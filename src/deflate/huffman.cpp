#include "deflate/huffman.hpp"

#include <algorithm>
#include <numeric>
#include <queue>
#include <stdexcept>

namespace lzss::deflate {

std::vector<std::uint16_t> canonical_codes(std::span<const std::uint8_t> lengths) {
  unsigned max_len = 0;
  for (const auto l : lengths) max_len = std::max<unsigned>(max_len, l);

  std::vector<std::uint32_t> bl_count(max_len + 1, 0);
  for (const auto l : lengths)
    if (l != 0) bl_count[l]++;

  std::vector<std::uint32_t> next_code(max_len + 2, 0);
  std::uint32_t code = 0;
  for (unsigned len = 1; len <= max_len; ++len) {
    code = (code + bl_count[len - 1]) << 1;
    next_code[len] = code;
  }

  std::vector<std::uint16_t> codes(lengths.size(), 0);
  for (std::size_t s = 0; s < lengths.size(); ++s) {
    if (lengths[s] != 0) codes[s] = static_cast<std::uint16_t>(next_code[lengths[s]]++);
  }
  return codes;
}

std::vector<std::uint8_t> huffman_code_lengths(std::span<const std::uint64_t> freqs,
                                               unsigned max_bits) {
  const std::size_t n = freqs.size();
  std::vector<std::uint8_t> lengths(n, 0);

  struct Node {
    std::uint64_t freq;
    int left = -1, right = -1;  // -1 for leaves
    std::uint16_t symbol = 0;
  };
  std::vector<Node> nodes;
  nodes.reserve(2 * n);

  using HeapItem = std::pair<std::uint64_t, int>;  // (freq, node index)
  std::priority_queue<HeapItem, std::vector<HeapItem>, std::greater<>> heap;
  for (std::size_t s = 0; s < n; ++s) {
    if (freqs[s] == 0) continue;
    nodes.push_back({freqs[s], -1, -1, static_cast<std::uint16_t>(s)});
    heap.emplace(freqs[s], static_cast<int>(nodes.size() - 1));
  }
  if (heap.empty()) return lengths;
  if (heap.size() == 1) {
    lengths[nodes[heap.top().second].symbol] = 1;
    return lengths;
  }

  while (heap.size() > 1) {
    const auto [fa, a] = heap.top();
    heap.pop();
    const auto [fb, b] = heap.top();
    heap.pop();
    nodes.push_back({fa + fb, a, b, 0});
    heap.emplace(fa + fb, static_cast<int>(nodes.size() - 1));
  }

  // Depth-first assignment of depths.
  std::vector<std::pair<int, unsigned>> stack{{heap.top().second, 0}};
  unsigned overflow_max = 0;
  while (!stack.empty()) {
    const auto [idx, depth] = stack.back();
    stack.pop_back();
    const Node& nd = nodes[static_cast<std::size_t>(idx)];
    if (nd.left < 0) {
      lengths[nd.symbol] = static_cast<std::uint8_t>(std::min(depth, max_bits));
      overflow_max = std::max(overflow_max, depth);
      continue;
    }
    stack.emplace_back(nd.left, depth + 1);
    stack.emplace_back(nd.right, depth + 1);
  }

  if (overflow_max <= max_bits) return lengths;

  // Kraft repair (zlib-style): clamping to max_bits over-subscribes the
  // code space; lengthen the cheapest symbols until the Kraft sum is exact.
  const std::uint64_t budget = 1ull << max_bits;
  auto kraft = [&] {
    std::uint64_t k = 0;
    for (const auto l : lengths)
      if (l != 0) k += budget >> l;
    return k;
  };
  // Symbols sorted by ascending frequency, so we demote the rarest first.
  std::vector<std::size_t> order;
  for (std::size_t s = 0; s < n; ++s)
    if (freqs[s] != 0) order.push_back(s);
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return freqs[a] < freqs[b]; });

  std::uint64_t k = kraft();
  while (k > budget) {
    // Find a symbol whose code can be lengthened (length < max_bits).
    bool changed = false;
    for (const std::size_t s : order) {
      if (lengths[s] != 0 && lengths[s] < max_bits) {
        k -= budget >> lengths[s];
        lengths[s]++;
        k += budget >> lengths[s];
        changed = true;
        if (k <= budget) break;
      }
    }
    if (!changed) throw std::logic_error("huffman_code_lengths: cannot satisfy Kraft");
  }
  // Optionally shorten codes to use the slack (keeps the code canonicalizable
  // and slightly improves efficiency); iterate from the most frequent.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    while (lengths[*it] > 1) {
      const std::uint64_t gain = (budget >> (lengths[*it] - 1)) - (budget >> lengths[*it]);
      if (k + gain > budget) break;
      lengths[*it]--;
      k += gain;
    }
  }
  return lengths;
}

HuffmanDecoder::HuffmanDecoder(std::span<const std::uint8_t> lengths) {
  for (const auto l : lengths) {
    if (l > kMaxBits) throw std::invalid_argument("HuffmanDecoder: length > 15");
    if (l != 0) count_[l]++;
  }
  // Over-subscription check (Kraft inequality).
  std::int64_t left = 1;
  for (unsigned len = 1; len <= kMaxBits; ++len) {
    left <<= 1;
    left -= count_[len];
    if (left < 0) throw std::invalid_argument("HuffmanDecoder: over-subscribed code");
  }
  // offsets[len] = index of first symbol with that code length.
  std::uint32_t offsets[kMaxBits + 2] = {};
  for (unsigned len = 1; len <= kMaxBits; ++len) offsets[len + 1] = offsets[len] + count_[len];
  total_symbols_ = offsets[kMaxBits + 1];
  symbol_.resize(total_symbols_);
  for (std::size_t s = 0; s < lengths.size(); ++s) {
    if (lengths[s] != 0) symbol_[offsets[lengths[s]]++] = static_cast<std::uint16_t>(s);
  }
}

void HuffmanDecoder::throw_bad_code() {
  throw std::runtime_error("HuffmanDecoder: invalid code in stream");
}

}  // namespace lzss::deflate
