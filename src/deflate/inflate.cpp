#include "deflate/inflate.hpp"

#include <algorithm>
#include <array>
#include <string>
#include <vector>

#include "common/bitio.hpp"
#include "common/checksum.hpp"
#include "deflate/fixed_tables.hpp"
#include "deflate/huffman.hpp"
#include "fault/fault.hpp"

namespace lzss::deflate {
namespace {

constexpr std::array<std::uint8_t, 19> kClcOrder{16, 17, 18, 0, 8,  7, 9,  6, 10, 5,
                                                 11, 4,  12, 3, 13, 2, 14, 1, 15};

/// The compression-bomb guard: refuses to commit output past @p cap.
void check_output_cap(std::size_t next_size, std::size_t cap) {
  if (next_size > cap) throw InflateBombError("inflate: output exceeds expansion cap");
}

void inflate_block_payload(bits::BitReader& r, const HuffmanDecoder& lit,
                           const HuffmanDecoder& dist, std::vector<std::uint8_t>& out,
                           std::size_t cap) {
  auto next_bit = [&r] { return r.get_bit(); };
  for (;;) {
    const unsigned sym = lit.decode(next_bit);
    if (sym < 256) {
      check_output_cap(out.size() + 1, cap);
      out.push_back(static_cast<std::uint8_t>(sym));
      continue;
    }
    if (sym == kEndOfBlock) return;
    if (sym > 285) throw InflateError("inflate: invalid length symbol");
    const std::uint32_t length = length_base(sym) + r.get_bits(length_extra_bits(sym));
    if (dist.empty()) throw InflateError("inflate: match with no distance code");
    const unsigned dsym = dist.decode(next_bit);
    if (dsym > 29) throw InflateError("inflate: invalid distance symbol");
    const std::uint32_t distance = distance_base(dsym) + r.get_bits(distance_extra_bits(dsym));
    if (distance > out.size()) throw InflateError("inflate: distance too far back");
    check_output_cap(out.size() + length, cap);
    std::size_t src = out.size() - distance;
    for (std::uint32_t i = 0; i < length; ++i) out.push_back(out[src + i]);
  }
}

void inflate_stored(bits::BitReader& r, std::vector<std::uint8_t>& out, std::size_t cap) {
  r.align_to_byte();
  const std::uint32_t len = r.get_bits(16);
  const std::uint32_t nlen = r.get_bits(16);
  if ((len ^ nlen) != 0xFFFF) throw InflateError("inflate: stored block LEN/NLEN mismatch");
  check_output_cap(out.size() + len, cap);
  for (std::uint32_t i = 0; i < len; ++i)
    out.push_back(static_cast<std::uint8_t>(r.get_bits(8)));
}

void inflate_fixed(bits::BitReader& r, std::vector<std::uint8_t>& out, std::size_t cap) {
  static const HuffmanDecoder lit = [] {
    std::array<std::uint8_t, 288> lengths{};
    for (unsigned s = 0; s <= 143; ++s) lengths[s] = 8;
    for (unsigned s = 144; s <= 255; ++s) lengths[s] = 9;
    for (unsigned s = 256; s <= 279; ++s) lengths[s] = 7;
    for (unsigned s = 280; s <= 287; ++s) lengths[s] = 8;
    return HuffmanDecoder(lengths);
  }();
  static const HuffmanDecoder dist = [] {
    std::array<std::uint8_t, 32> lengths{};
    lengths.fill(5);
    return HuffmanDecoder(lengths);
  }();
  inflate_block_payload(r, lit, dist, out, cap);
}

void inflate_dynamic(bits::BitReader& r, std::vector<std::uint8_t>& out, std::size_t cap) {
  const std::uint32_t hlit = r.get_bits(5) + 257;
  const std::uint32_t hdist = r.get_bits(5) + 1;
  const std::uint32_t hclen = r.get_bits(4) + 4;
  if (hlit > 286 || hdist > 30) throw InflateError("inflate: bad HLIT/HDIST");

  std::array<std::uint8_t, 19> clc_lengths{};
  for (std::uint32_t i = 0; i < hclen; ++i)
    clc_lengths[kClcOrder[i]] = static_cast<std::uint8_t>(r.get_bits(3));
  const HuffmanDecoder clc(clc_lengths);

  auto next_bit = [&r] { return r.get_bit(); };
  std::vector<std::uint8_t> lengths;
  lengths.reserve(hlit + hdist);
  while (lengths.size() < hlit + hdist) {
    const unsigned sym = clc.decode(next_bit);
    if (sym < 16) {
      lengths.push_back(static_cast<std::uint8_t>(sym));
    } else if (sym == 16) {
      if (lengths.empty()) throw InflateError("inflate: repeat with no previous length");
      const std::uint32_t n = 3 + r.get_bits(2);
      lengths.insert(lengths.end(), n, lengths.back());
    } else if (sym == 17) {
      lengths.insert(lengths.end(), 3 + r.get_bits(3), 0);
    } else {  // 18
      lengths.insert(lengths.end(), 11 + r.get_bits(7), 0);
    }
  }
  if (lengths.size() != hlit + hdist) throw InflateError("inflate: code length overflow");

  const std::span<const std::uint8_t> all(lengths);
  const HuffmanDecoder lit(all.subspan(0, hlit));
  const HuffmanDecoder dist(all.subspan(hlit, hdist));
  inflate_block_payload(r, lit, dist, out, cap);
}

}  // namespace

std::vector<std::uint8_t> inflate_raw(std::span<const std::uint8_t> stream,
                                      std::size_t max_output) {
  bits::BitReader r(stream);
  std::vector<std::uint8_t> out;
  // Even without a caller cap, output is bounded by the structural expansion
  // limit — a corrupt or hostile stream cannot force unbounded allocation.
  const std::size_t cap = std::min(max_output, max_inflate_expansion(stream.size()));
  try {
    for (;;) {
      const std::uint32_t bfinal = r.get_bit();
      const std::uint32_t btype = r.get_bits(2);
      switch (btype) {
        case 0:
          inflate_stored(r, out, cap);
          break;
        case 1:
          inflate_fixed(r, out, cap);
          break;
        case 2:
          inflate_dynamic(r, out, cap);
          break;
        default:
          throw InflateError("inflate: reserved block type");
      }
      if (bfinal != 0) return out;
    }
  } catch (const std::invalid_argument& e) {
    // Malformed Huffman codes surface as invalid_argument from the decoder
    // constructor; to the caller that is simply corrupt input.
    throw InflateError(std::string("inflate: ") + e.what());
  }
}

std::vector<std::uint8_t> zlib_decompress(std::span<const std::uint8_t> stream,
                                          std::size_t max_output) {
  // Bit-corruption fault point: when armed, this call sees a damaged copy of
  // the container, exactly like flipped bits on a storage or transport path.
  std::vector<std::uint8_t> damaged;
  if (fault::corrupt_into("deflate.inflate.corrupt", stream, damaged)) stream = damaged;

  if (stream.size() < 6) throw InflateError("zlib: stream too short");
  const std::uint8_t cmf = stream[0];
  const std::uint8_t flg = stream[1];
  if ((cmf & 0x0F) != 8) throw InflateError("zlib: compression method is not deflate");
  if ((static_cast<unsigned>(cmf) * 256 + flg) % 31 != 0)
    throw InflateError("zlib: FCHECK failed");
  if ((flg & 0x20) != 0) throw InflateError("zlib: preset dictionaries unsupported");

  auto out = inflate_raw(stream.subspan(2, stream.size() - 6), max_output);
  const std::size_t t = stream.size() - 4;
  const std::uint32_t expected = (std::uint32_t{stream[t]} << 24) |
                                 (std::uint32_t{stream[t + 1]} << 16) |
                                 (std::uint32_t{stream[t + 2]} << 8) | stream[t + 3];
  if (checksum::adler32(out) != expected) throw InflateError("zlib: Adler-32 mismatch");
  return out;
}

std::vector<std::uint8_t> gzip_decompress(std::span<const std::uint8_t> stream,
                                          std::size_t max_output) {
  if (stream.size() < 18) throw InflateError("gzip: stream too short");
  if (stream[0] != 0x1F || stream[1] != 0x8B) throw InflateError("gzip: bad magic");
  if (stream[2] != 8) throw InflateError("gzip: compression method is not deflate");
  const std::uint8_t flags = stream[3];
  std::size_t pos = 10;
  if ((flags & 0x04) != 0) {  // FEXTRA
    if (pos + 2 > stream.size()) throw InflateError("gzip: truncated FEXTRA");
    const std::size_t xlen = stream[pos] | (std::size_t{stream[pos + 1]} << 8);
    pos += 2 + xlen;
  }
  for (const std::uint8_t bit : {std::uint8_t{0x08}, std::uint8_t{0x10}}) {  // FNAME, FCOMMENT
    if ((flags & bit) != 0) {
      while (pos < stream.size() && stream[pos] != 0) ++pos;
      ++pos;
    }
  }
  if ((flags & 0x02) != 0) pos += 2;  // FHCRC
  if (pos + 8 >= stream.size()) throw InflateError("gzip: truncated header");

  auto out = inflate_raw(stream.subspan(pos, stream.size() - pos - 8), max_output);
  const std::size_t t = stream.size() - 8;
  auto le32 = [&](std::size_t i) {
    return std::uint32_t{stream[i]} | (std::uint32_t{stream[i + 1]} << 8) |
           (std::uint32_t{stream[i + 2]} << 16) | (std::uint32_t{stream[i + 3]} << 24);
  };
  if (checksum::crc32(out) != le32(t)) throw InflateError("gzip: CRC-32 mismatch");
  if (static_cast<std::uint32_t>(out.size()) != le32(t + 4))
    throw InflateError("gzip: ISIZE mismatch");
  return out;
}

}  // namespace lzss::deflate
