// Canonical Huffman utilities shared by the dynamic-block encoder and the
// inflate decoder.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace lzss::deflate {

/// Computes canonical code values for the given code lengths (RFC 1951
/// section 3.2.2). lengths[i] == 0 means "symbol absent".
[[nodiscard]] std::vector<std::uint16_t> canonical_codes(std::span<const std::uint8_t> lengths);

/// Computes length-limited Huffman code lengths for the given symbol
/// frequencies. Zero-frequency symbols get length 0. Uses a standard Huffman
/// build followed by zlib-style depth-overflow correction so no code exceeds
/// @p max_bits.
[[nodiscard]] std::vector<std::uint8_t> huffman_code_lengths(std::span<const std::uint64_t> freqs,
                                                             unsigned max_bits);

/// Canonical Huffman decoder over an LSB-first Deflate bitstream.
///
/// Uses the counts/offsets decode loop: peel one bit at a time, tracking the
/// first code value of each length — O(code length) per symbol, no tables
/// larger than the alphabet.
class HuffmanDecoder {
 public:
  /// @param lengths per-symbol code lengths; 0 = absent. Throws on an
  /// over-subscribed code; incomplete codes are accepted (RFC allows the
  /// single-symbol distance code case).
  explicit HuffmanDecoder(std::span<const std::uint8_t> lengths);

  /// Decodes one symbol by pulling bits via @p next_bit (returns 0/1).
  template <typename NextBit>
  [[nodiscard]] unsigned decode(NextBit&& next_bit) const {
    std::uint32_t code = 0;
    std::uint32_t first = 0;
    std::uint32_t index = 0;
    for (unsigned len = 1; len <= kMaxBits; ++len) {
      code |= next_bit() & 1u;
      const std::uint32_t count = count_[len];
      if (code - first < count) return symbol_[index + (code - first)];
      index += count;
      first = (first + count) << 1;
      code <<= 1;
    }
    throw_bad_code();
  }

  [[nodiscard]] bool empty() const noexcept { return total_symbols_ == 0; }

 private:
  [[noreturn]] static void throw_bad_code();

  static constexpr unsigned kMaxBits = 15;
  std::uint32_t count_[kMaxBits + 1] = {};  // number of codes of each length
  std::vector<std::uint16_t> symbol_;       // symbols sorted by (length, symbol)
  std::uint32_t total_symbols_ = 0;
};

}  // namespace lzss::deflate
