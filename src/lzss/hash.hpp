// The 3-byte hash family used by the match finder.
//
// The hardware design makes the exact hash function a compile-time generic;
// we provide the zlib shift-xor hash (the default, so the software baseline
// and the HW model probe identical chains) and a Knuth-style multiplicative
// alternative for the estimator's design-space exploration.
#pragma once

#include <cstdint>

namespace lzss::core {

enum class HashKind : std::uint8_t {
  kZlibShift,        ///< h = ((h << s) ^ c) & mask, s = ceil(bits / 3)
  kMultiplicative,   ///< Fibonacci hashing of the 3 packed bytes
};

struct HashSpec {
  unsigned bits = 15;  ///< table has 2^bits entries
  HashKind kind = HashKind::kZlibShift;

  [[nodiscard]] constexpr std::uint32_t mask() const noexcept { return (1u << bits) - 1u; }
  [[nodiscard]] constexpr std::uint32_t table_size() const noexcept { return 1u << bits; }
  /// Per-byte shift of the zlib rolling form.
  [[nodiscard]] constexpr unsigned shift() const noexcept { return (bits + 2) / 3; }

  /// Hashes the 3 bytes b0,b1,b2 (stream order).
  [[nodiscard]] constexpr std::uint32_t hash3(std::uint8_t b0, std::uint8_t b1,
                                              std::uint8_t b2) const noexcept {
    switch (kind) {
      case HashKind::kZlibShift: {
        const unsigned s = shift();
        std::uint32_t h = b0;
        h = ((h << s) ^ b1);
        h = ((h << s) ^ b2);
        return h & mask();
      }
      case HashKind::kMultiplicative: {
        // Canonical Fibonacci form: multiply, then keep the TOP `bits` bits.
        // The shift alone already narrows to `bits` bits, so no mask — and
        // the degenerate table sizes shift out of range instead of into UB.
        const std::uint32_t packed = (std::uint32_t{b0} << 16) | (std::uint32_t{b1} << 8) | b2;
        const std::uint32_t mixed = packed * 2654435761u;
        if (bits == 0) return 0;
        return bits >= 32 ? mixed : mixed >> (32u - bits);
      }
    }
    return 0;  // unreachable
  }

  constexpr bool operator==(const HashSpec&) const noexcept = default;
};

}  // namespace lzss::core
