#include "lzss/incremental_encoder.hpp"

#include <algorithm>
#include <cstring>

namespace lzss::core {

IncrementalEncoder::IncrementalEncoder(MatchParams params) : params_(params) {
  buf_.resize(std::size_t{2} * params_.window_size());
  head_.assign(params_.hash.table_size(), kNil);
  prev_.assign(params_.window_size(), kNil);
}

void IncrementalEncoder::insert(std::uint32_t pos) {
  const std::uint32_t h = params_.hash.hash3(buf_[pos], buf_[pos + 1], buf_[pos + 2]);
  prev_[pos & (params_.window_size() - 1)] = head_[h];
  head_[h] = pos;
}

void IncrementalEncoder::slide_window() {
  const std::uint32_t w = params_.window_size();
  std::memmove(buf_.data(), buf_.data() + w, w);
  strstart_ -= w;
  buffered_ -= w;
  // zlib's rotation: rebase every table entry; anything pointing into the
  // evicted half becomes NIL. This O(2^H + W) pass is what the paper's
  // hardware replaces with generation bits + M-way parallel purges.
  for (auto& v : head_) v = (v >= w) ? v - w : kNil;
  for (auto& v : prev_) v = (v >= w) ? v - w : kNil;
  rebased_ += head_.size() + prev_.size();
  ++rotations_;
}

void IncrementalEncoder::process(std::vector<Token>& out, std::uint32_t min_lookahead) {
  const std::uint32_t w = params_.window_size();
  while (strstart_ < buffered_ && buffered_ - strstart_ >= min_lookahead) {
    if (strstart_ >= slide_threshold()) slide_window();
    const std::uint32_t lookahead = buffered_ - strstart_;

    std::uint32_t best_len = 0, best_dist = 0;
    if (lookahead >= kMinMatch) {
      const std::uint32_t h =
          params_.hash.hash3(buf_[strstart_], buf_[strstart_ + 1], buf_[strstart_ + 2]);
      std::uint32_t cand = head_[h];
      insert(strstart_);

      const std::uint32_t max_len = std::min<std::uint32_t>(kMaxMatch, lookahead);
      const std::uint32_t nice = std::min<std::uint32_t>(params_.nice_length, max_len);
      std::uint32_t chain_left = params_.max_chain;
      while (cand != kNil && cand < strstart_ && strstart_ - cand <= max_dist() &&
             chain_left-- > 0) {
        std::uint32_t len = 0;
        while (len < max_len && buf_[cand + len] == buf_[strstart_ + len]) ++len;
        if (len > best_len && len >= kMinMatch) {
          best_len = len;
          best_dist = strstart_ - cand;
          if (len >= nice) break;
        }
        const std::uint32_t prior = prev_[cand & (w - 1)];
        if (prior >= cand) break;  // rebased/overwritten entry: chain ends
        cand = prior;
      }
    }

    if (best_len >= kMinMatch) {
      out.push_back(Token::match(best_dist, best_len));
      // deflate_fast: insert the covered positions only for short matches.
      if (best_len <= params_.max_lazy) {
        for (std::uint32_t k = strstart_ + 1;
             k < strstart_ + best_len && k + kMinMatch <= buffered_; ++k) {
          insert(k);
        }
      }
      strstart_ += best_len;
    } else {
      out.push_back(Token::literal(buf_[strstart_]));
      strstart_ += 1;
    }
  }
}

void IncrementalEncoder::feed(std::span<const std::uint8_t> chunk, std::vector<Token>& out) {
  std::size_t i = 0;
  while (i < chunk.size()) {
    if (buffered_ == buf_.size()) {
      // With a full buffer, processing drains until the lookahead is below
      // MIN_LOOKAHEAD, which puts strstart_ past the slide threshold; the
      // explicit slide then frees a whole window for the next copy. For
      // windows smaller than MIN_LOOKAHEAD that drain can stop with
      // strstart_ still inside the first window half, where sliding would
      // underflow — drain to the end instead (process slides internally
      // once strstart_ clears the threshold).
      process(out, kMinLookahead);
      if (buffered_ == buf_.size()) {
        if (strstart_ >= params_.window_size()) {
          slide_window();
        } else {
          process(out, 1);
        }
      }
    }
    const std::size_t n = std::min<std::size_t>(buf_.size() - buffered_, chunk.size() - i);
    std::memcpy(buf_.data() + buffered_, chunk.data() + i, n);
    buffered_ += static_cast<std::uint32_t>(n);
    total_in_ += n;
    i += n;
    process(out, kMinLookahead);
  }
}

void IncrementalEncoder::finish(std::vector<Token>& out) {
  process(out, 1);
  // Reset for reuse.
  strstart_ = 0;
  buffered_ = 0;
  total_in_ = 0;
  std::fill(head_.begin(), head_.end(), kNil);
  std::fill(prev_.begin(), prev_.end(), kNil);
}

}  // namespace lzss::core
