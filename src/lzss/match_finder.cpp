#include "lzss/match_finder.hpp"

#include <algorithm>
#include <cassert>
#include <vector>

#include "lzss/simd_compare.hpp"
#include "lzss/token.hpp"

namespace lzss::core {

std::unique_ptr<MatchFinder> make_suffix_array_finder(const MatchParams& params);
std::unique_ptr<MatchFinder> make_greedy_finder(const MatchParams& params);

namespace {

// The zlib head/prev chain finder, extracted from SoftwareEncoder. Probe
// order, chain bounds, and the tired-searcher/nice cutoffs are kept exactly
// as in SoftwareEncoder::encode_fast + longest_match so the MatchFinderEncoder
// over this backend emits a bit-identical token stream (pinned by
// tests/test_match_finder.cpp); only the inner byte compare is routed through
// the SIMD comparer.
class HashChainFinder final : public MatchFinder {
 public:
  explicit HashChainFinder(const MatchParams& params) : params_(params) {
    head_.assign(params_.hash.table_size(), kNil);
    prev_.assign(params_.window_size(), kNil);
  }

  [[nodiscard]] MatchFinderKind kind() const noexcept override {
    return MatchFinderKind::kHashChain;
  }

  void seed(std::span<const std::uint8_t> block) override {
    in_ = block;
    std::fill(head_.begin(), head_.end(), kNil);
    std::fill(prev_.begin(), prev_.end(), kNil);
    ++stats_.seeds;
  }

  [[nodiscard]] MatchCandidate find_longest_match(std::uint64_t pos,
                                                  std::uint32_t best_so_far) override {
    assert(pos + kMinMatch <= in_.size());
    const std::uint64_t head = insert(pos);
    if (head == kNil) return {};

    const std::uint32_t max_len =
        static_cast<std::uint32_t>(std::min<std::uint64_t>(kMaxMatch, in_.size() - pos));
    if (max_len < kMinMatch) return {};

    std::uint32_t chain_left = params_.max_chain;
    if (best_so_far >= params_.good_length) chain_left >>= 2;  // zlib: tired searcher
    const std::uint32_t nice = std::min<std::uint32_t>(params_.nice_length, max_len);
    const std::uint64_t limit =
        pos > params_.max_distance() ? pos - params_.max_distance() : 0;

    MatchCandidate best{};
    std::uint32_t best_len = std::max(best_so_far, kMinMatch - 1);
    std::uint64_t cur = head;

    while (cur != kNil && cur >= limit && cur < pos && chain_left-- > 0) {
      ++stats_.probes;
      const std::uint32_t len = static_cast<std::uint32_t>(
          simd::match_length(in_.data() + cur, in_.data() + pos, max_len));
      stats_.compare_bytes += std::min<std::uint32_t>(len + 1, max_len);
      if (len > best_len) {
        best_len = len;
        best = {len, static_cast<std::uint32_t>(pos - cur)};
        if (len >= nice) break;
      }
      const std::uint64_t prior = prev_[cur & (params_.window_size() - 1)];
      if (prior != kNil && prior >= cur) break;  // chain entry overwritten by a newer position
      cur = prior;
    }
    return best;
  }

  void advance(std::uint64_t pos, std::uint32_t covered) override {
    // deflate_fast: index covered positions only for short matches
    // (max_insert_length == max_lazy in fast mode).
    if (covered > params_.max_lazy) return;
    for (std::uint64_t k = pos + 1; k < pos + covered && k + kMinMatch <= in_.size(); ++k) {
      insert(k);
    }
  }

 private:
  static constexpr std::uint64_t kNil = ~std::uint64_t{0};

  std::uint64_t insert(std::uint64_t pos) {
    const std::uint32_t h = params_.hash.hash3(in_[pos], in_[pos + 1], in_[pos + 2]);
    const std::uint64_t prior = head_[h];
    prev_[pos & (params_.window_size() - 1)] = prior;
    head_[h] = pos;
    return prior;
  }

  MatchParams params_;
  std::span<const std::uint8_t> in_;
  std::vector<std::uint64_t> head_;
  std::vector<std::uint64_t> prev_;
};

}  // namespace

std::unique_ptr<MatchFinder> make_match_finder(MatchFinderKind kind, const MatchParams& params) {
  switch (kind) {
    case MatchFinderKind::kHashChain:
      return std::make_unique<HashChainFinder>(params);
    case MatchFinderKind::kSuffixArray:
      return make_suffix_array_finder(params);
    case MatchFinderKind::kGreedy:
      return make_greedy_finder(params);
  }
  return std::make_unique<HashChainFinder>(params);
}

}  // namespace lzss::core
