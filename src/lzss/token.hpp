// LZSS decompressor commands (the paper's D/L pairs).
//
// Section III of the paper: every command has two fields, D (log2 N bits)
// and L (8 bits). D == 0 means "output one literal" and L holds the byte;
// otherwise D is the copy distance and L the copy length minus 3. Lengths
// below 3 are never emitted as matches.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace lzss::core {

inline constexpr std::uint32_t kMinMatch = 3;
inline constexpr std::uint32_t kMaxMatch = 258;  // Deflate's maximum match length

class Token {
 public:
  [[nodiscard]] static constexpr Token literal(std::uint8_t byte) noexcept {
    return Token{0, byte};
  }
  /// @param distance 1..window, @param length kMinMatch..kMaxMatch.
  [[nodiscard]] static constexpr Token match(std::uint32_t distance,
                                             std::uint32_t length) noexcept {
    return Token{static_cast<std::uint16_t>(distance),
                 static_cast<std::uint16_t>(length)};
  }

  [[nodiscard]] constexpr bool is_literal() const noexcept { return distance_ == 0; }
  [[nodiscard]] constexpr std::uint8_t literal_byte() const noexcept {
    return static_cast<std::uint8_t>(payload_);
  }
  [[nodiscard]] constexpr std::uint32_t distance() const noexcept { return distance_; }
  [[nodiscard]] constexpr std::uint32_t length() const noexcept { return payload_; }

  constexpr bool operator==(const Token&) const noexcept = default;

 private:
  constexpr Token(std::uint16_t distance, std::uint16_t payload) noexcept
      : distance_(distance), payload_(payload) {}

  std::uint16_t distance_;  // 0 => literal
  std::uint16_t payload_;   // literal byte, or match length (3..258)
};

/// Serializes tokens in the paper's raw on-wire layout: D in log2(window)
/// bits followed by L in 8 bits, packed LSB-first. This is the compressor's
/// internal command format (before Huffman coding); exposed mostly so the
/// format described in section III is testable on its own.
[[nodiscard]] std::vector<std::uint8_t> pack_raw_tokens(std::span<const Token> tokens,
                                                        unsigned window_bits);

/// Parses the raw layout back. @p token_count tokens are read.
[[nodiscard]] std::vector<Token> unpack_raw_tokens(std::span<const std::uint8_t> bytes,
                                                   std::size_t token_count,
                                                   unsigned window_bits);

}  // namespace lzss::core
