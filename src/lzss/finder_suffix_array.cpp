// Suffix-array MatchFinder backend.
//
// seed() builds, per block: a suffix array (prefix-doubling, O(n log^2 n)),
// its inverse, and the Kasai LCP array (O(n), extension loop vectorized via
// the SIMD comparer). find_longest_match() then needs no byte compares at
// all: the longest previous match for position p is found by walking rank
// neighbors of isa[p] in both directions, maintaining the running-minimum
// LCP, and keeping the nearest earlier position whose running LCP beats the
// best so far. The walk stops as soon as the running LCP can no longer
// improve the answer, so per-position cost is bounded by a small step budget
// while worst-case inputs (long runs, periodic data) that explode hash
// chains cost the same as any other block — the trade Ferreira et al.
// (arXiv:0912.5449) make for LZ factorization.
#include <algorithm>
#include <cassert>
#include <numeric>
#include <vector>

#include "lzss/match_finder.hpp"
#include "lzss/simd_compare.hpp"
#include "lzss/token.hpp"

namespace lzss::core {
namespace {

class SuffixArrayFinder final : public MatchFinder {
 public:
  explicit SuffixArrayFinder(const MatchParams& params) : params_(params) {}

  [[nodiscard]] MatchFinderKind kind() const noexcept override {
    return MatchFinderKind::kSuffixArray;
  }

  void seed(std::span<const std::uint8_t> block) override {
    in_ = block;
    build_suffix_array();
    build_lcp();
    ++stats_.seeds;
  }

  [[nodiscard]] MatchCandidate find_longest_match(std::uint64_t pos,
                                                  std::uint32_t best_so_far) override {
    const std::size_t n = in_.size();
    assert(pos + kMinMatch <= n);
    const std::uint32_t max_len =
        static_cast<std::uint32_t>(std::min<std::uint64_t>(kMaxMatch, n - pos));
    if (max_len < kMinMatch) return {};

    const std::uint32_t nice = std::min<std::uint32_t>(params_.nice_length, max_len);
    const std::uint64_t max_dist = params_.max_distance();
    MatchCandidate best{};
    std::uint32_t best_len = std::max(best_so_far, kMinMatch - 1);

    // Walk rank neighbors; the LCP of sa[r] with a rank i is the running
    // minimum of the lcp_ entries between them, so it only ever decreases —
    // break as soon as it cannot beat best_len.
    const std::uint32_t r = isa_[pos];
    std::uint32_t running = ~0u;
    for (std::uint32_t i = r, steps = 0; i > 0 && steps < kStepBudget; --i, ++steps) {
      running = std::min(running, lcp_[i]);
      if (running <= best_len) break;
      ++stats_.probes;
      const std::uint32_t cand = sa_[i - 1];
      if (cand < pos && pos - cand <= max_dist) {
        const std::uint32_t len = std::min(running, max_len);
        if (len > best_len) {
          best_len = len;
          best = {len, static_cast<std::uint32_t>(pos - cand)};
          if (len >= nice) return best;
        }
      }
    }
    running = ~0u;
    for (std::uint32_t i = r + 1, steps = 0;
         i < static_cast<std::uint32_t>(n) && steps < kStepBudget; ++i, ++steps) {
      running = std::min(running, lcp_[i]);
      if (running <= best_len) break;
      ++stats_.probes;
      const std::uint32_t cand = sa_[i];
      if (cand < pos && pos - cand <= max_dist) {
        const std::uint32_t len = std::min(running, max_len);
        if (len > best_len) {
          best_len = len;
          best = {len, static_cast<std::uint32_t>(pos - cand)};
          if (len >= nice) return best;
        }
      }
    }
    return best;
  }

  // The SA indexes every position up front; skipped positions need no work.
  void advance(std::uint64_t, std::uint32_t) override {}

 private:
  // Per-direction neighbor budget. Ranks adjacent to isa[pos] share the
  // longest prefixes, so the best candidate is almost always within a few
  // steps; the budget only caps pathological blocks where many equal-prefix
  // suffixes all fail the distance filter.
  static constexpr std::uint32_t kStepBudget = 32;

  void build_suffix_array() {
    const std::size_t n = in_.size();
    sa_.resize(n);
    isa_.resize(n);
    if (n == 0) return;
    std::iota(sa_.begin(), sa_.end(), 0u);
    std::vector<std::int64_t> rank(n), next(n);
    for (std::size_t i = 0; i < n; ++i) rank[i] = in_[i];

    for (std::size_t k = 1;; k *= 2) {
      auto key = [&](std::uint32_t s) {
        return std::pair<std::int64_t, std::int64_t>{rank[s],
                                                     s + k < n ? rank[s + k] : -1};
      };
      std::sort(sa_.begin(), sa_.end(),
                [&](std::uint32_t a, std::uint32_t b) { return key(a) < key(b); });
      next[sa_[0]] = 0;
      for (std::size_t i = 1; i < n; ++i) {
        next[sa_[i]] = next[sa_[i - 1]] + (key(sa_[i - 1]) < key(sa_[i]) ? 1 : 0);
      }
      rank.swap(next);
      if (rank[sa_[n - 1]] == static_cast<std::int64_t>(n - 1)) break;
    }
    for (std::size_t i = 0; i < n; ++i) isa_[sa_[i]] = static_cast<std::uint32_t>(i);
  }

  // Kasai: lcp_[i] = LCP(suffix sa_[i-1], suffix sa_[i]); lcp_[0] = 0.
  void build_lcp() {
    const std::size_t n = in_.size();
    lcp_.assign(n, 0);
    std::size_t h = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (isa_[i] == 0) {
        h = 0;
        continue;
      }
      const std::size_t j = sa_[isa_[i] - 1];
      const std::size_t bound = n - std::max(i, j);
      if (h < bound) {
        const std::size_t ext =
            simd::match_length(in_.data() + i + h, in_.data() + j + h, bound - h);
        h += ext;
        stats_.compare_bytes += ext;
      }
      lcp_[isa_[i]] = static_cast<std::uint32_t>(h);
      if (h > 0) --h;
    }
  }

  MatchParams params_;
  std::span<const std::uint8_t> in_;
  std::vector<std::uint32_t> sa_;   // rank -> position
  std::vector<std::uint32_t> isa_;  // position -> rank
  std::vector<std::uint32_t> lcp_;  // lcp_[i] = LCP(sa_[i-1], sa_[i])
};

}  // namespace

std::unique_ptr<MatchFinder> make_suffix_array_finder(const MatchParams& params) {
  return std::make_unique<SuffixArrayFinder>(params);
}

}  // namespace lzss::core
