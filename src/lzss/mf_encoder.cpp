#include "lzss/mf_encoder.hpp"

namespace lzss::core {

MatchFinderEncoder::MatchFinderEncoder(MatchParams params)
    : params_(params), finder_(make_match_finder(params.finder, params)) {}

std::vector<Token> MatchFinderEncoder::encode(std::span<const std::uint8_t> input) {
  finder_->seed(input);
  std::vector<Token> out;
  out.reserve(input.size() / 3 + 16);

  std::uint64_t pos = 0;
  while (pos < input.size()) {
    MatchCandidate m{};
    if (pos + kMinMatch <= input.size()) {
      m = finder_->find_longest_match(pos, kMinMatch - 1);
    }
    if (m.length >= kMinMatch) {
      out.push_back(Token::match(m.distance, m.length));
      finder_->advance(pos, m.length);
      pos += m.length;
    } else {
      out.push_back(Token::literal(input[pos]));
      ++pos;
    }
  }
  return out;
}

}  // namespace lzss::core
