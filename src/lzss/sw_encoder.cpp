#include "lzss/sw_encoder.hpp"

#include <algorithm>
#include <cassert>

namespace lzss::core {

SoftwareEncoder::SoftwareEncoder(MatchParams params) : params_(params) {
  head_.assign(params_.hash.table_size(), kNil);
  prev_.assign(params_.window_size(), kNil);
}

void SoftwareEncoder::reset_tables() {
  std::fill(head_.begin(), head_.end(), kNil);
  std::fill(prev_.begin(), prev_.end(), kNil);
  stats_ = EncodeStats{};
}

std::uint64_t SoftwareEncoder::insert(std::span<const std::uint8_t> in, std::uint64_t pos) {
  assert(pos + kMinMatch <= in.size());
  const std::uint32_t h = params_.hash.hash3(in[pos], in[pos + 1], in[pos + 2]);
  ++stats_.hash_computations;
  ++stats_.insertions;
  trace(MemRegion::kWindow, pos);  // the 3 hashed bytes share a line
  trace(MemRegion::kHead, h);      // read-modify-write of head[h]
  trace(MemRegion::kPrev, pos & (params_.window_size() - 1));
  const std::uint64_t prior = head_[h];
  prev_[pos & (params_.window_size() - 1)] = prior;
  head_[h] = pos;
  return prior;
}

SoftwareEncoder::Match SoftwareEncoder::longest_match(std::span<const std::uint8_t> in,
                                                      std::uint64_t pos, std::uint64_t head,
                                                      std::uint32_t best_so_far) {
  const std::uint32_t max_len =
      static_cast<std::uint32_t>(std::min<std::uint64_t>(kMaxMatch, in.size() - pos));
  if (max_len < kMinMatch) return {};

  std::uint32_t chain_left = params_.max_chain;
  if (best_so_far >= params_.good_length) chain_left >>= 2;  // zlib: tired searcher
  const std::uint32_t nice = std::min<std::uint32_t>(params_.nice_length, max_len);
  // Candidates closer than this are unreachable: distance must be encodable.
  const std::uint64_t limit =
      pos > params_.max_distance() ? pos - params_.max_distance() : 0;

  Match best{};
  std::uint32_t best_len = std::max(best_so_far, kMinMatch - 1);
  std::uint64_t cur = head;

  while (cur != kNil && cur >= limit && cur < pos && chain_left-- > 0) {
    ++stats_.chain_probes;
    std::uint32_t len = 0;
    while (len < max_len && in[cur + len] == in[pos + len]) ++len;
    const std::uint32_t compared = std::min<std::uint32_t>(len + 1, max_len);
    stats_.compare_bytes += compared;
    if (observer_ != nullptr) {
      // Both compare operands touch memory; sample at line granularity
      // rather than per byte (the inner loop streams within a line).
      for (std::uint32_t off = 0; off < compared; off += 32) {
        trace(MemRegion::kWindow, cur + off);
        trace(MemRegion::kWindow, pos + off);
      }
    }
    if (len > best_len) {
      best_len = len;
      best = {len, static_cast<std::uint32_t>(pos - cur)};
      if (len >= nice) break;
    }
    trace(MemRegion::kPrev, cur & (params_.window_size() - 1));
    const std::uint64_t prior = prev_[cur & (params_.window_size() - 1)];
    if (prior != kNil && prior >= cur) break;  // chain entry overwritten by a newer position
    cur = prior;
  }
  return best;
}

std::vector<Token> SoftwareEncoder::encode(std::span<const std::uint8_t> input) {
  reset_tables();
  std::vector<Token> out;
  out.reserve(input.size() / 3 + 16);
  if (params_.strategy == Strategy::kFast) {
    encode_fast(input, out);
  } else {
    encode_slow(input, out);
  }
  return out;
}

void SoftwareEncoder::encode_fast(std::span<const std::uint8_t> in, std::vector<Token>& out) {
  std::uint64_t pos = 0;
  while (pos < in.size()) {
    Match m{};
    if (pos + kMinMatch <= in.size()) {
      const std::uint64_t head = insert(in, pos);
      if (head != kNil) m = longest_match(in, pos, head, kMinMatch - 1);
    }
    if (m.length >= kMinMatch) {
      out.push_back(Token::match(m.distance, m.length));
      ++stats_.matches;
      stats_.match_bytes += m.length;
      // zlib deflate_fast: insert covered positions only for short matches
      // (max_insert_length == max_lazy in fast mode).
      if (m.length <= params_.max_lazy) {
        for (std::uint64_t k = pos + 1; k < pos + m.length && k + kMinMatch <= in.size(); ++k) {
          insert(in, k);
        }
      }
      pos += m.length;
    } else {
      out.push_back(Token::literal(in[pos]));
      ++stats_.literals;
      ++pos;
    }
  }
}

void SoftwareEncoder::encode_slow(std::span<const std::uint8_t> in, std::vector<Token>& out) {
  std::uint64_t pos = 0;
  bool match_available = false;  // a literal at pos-1 is pending
  Match prev_match{};            // match found at pos-1

  while (pos < in.size()) {
    Match cur{};
    std::uint64_t head = kNil;
    if (pos + kMinMatch <= in.size()) head = insert(in, pos);

    if (head != kNil && prev_match.length < params_.max_lazy) {
      if (prev_match.length >= kMinMatch) ++stats_.lazy_retries;
      cur = longest_match(in, pos, head, std::max(prev_match.length, kMinMatch - 1));
      // zlib: drop a minimal match that is too far away to be worth 2 extra bits.
      if (cur.length == kMinMatch && cur.distance > kTooFar) cur = {};
    }

    if (prev_match.length >= kMinMatch && cur.length <= prev_match.length) {
      // The match at pos-1 wins; emit it and skip over it.
      out.push_back(Token::match(prev_match.distance, prev_match.length));
      ++stats_.matches;
      stats_.match_bytes += prev_match.length;
      // Insert the covered positions pos+1 .. stop-1 (zlib's insert loop);
      // position stop is inserted at the top of the next iteration.
      const std::uint64_t stop = pos - 1 + prev_match.length;
      for (std::uint64_t k = pos + 1; k < stop && k + kMinMatch <= in.size(); ++k) {
        insert(in, k);
      }
      pos = stop;
      prev_match = {};
      match_available = false;
    } else if (match_available) {
      out.push_back(Token::literal(in[pos - 1]));
      ++stats_.literals;
      prev_match = cur;
      ++pos;
    } else {
      match_available = true;
      prev_match = cur;
      ++pos;
    }
  }
  if (match_available) {
    out.push_back(Token::literal(in[in.size() - 1]));
    ++stats_.literals;
  }
}

}  // namespace lzss::core
