// Reference LZSS decompressor: token stream -> original bytes.
//
// Used as the correctness oracle for both the software and the hardware
// compressor ("we have verified the quality of our design by ... comparing
// the results to [a] software reference model"). Strict: a malformed token
// stream (distance beyond the produced prefix, bad lengths) throws instead of
// producing garbage.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

#include "lzss/token.hpp"

namespace lzss::core {

/// Thrown on a malformed token stream.
class DecodeError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Decodes @p tokens. @p window_size (0 = unlimited) additionally enforces
/// that no distance exceeds the dictionary the encoder claimed to use.
[[nodiscard]] std::vector<std::uint8_t> decode_tokens(std::span<const Token> tokens,
                                                      std::uint32_t window_size = 0);

/// Convenience: true iff @p tokens decodes exactly to @p expected.
[[nodiscard]] bool tokens_reproduce(std::span<const Token> tokens,
                                    std::span<const std::uint8_t> expected,
                                    std::uint32_t window_size = 0);

}  // namespace lzss::core
