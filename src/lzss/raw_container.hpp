// Raw LZSS container — the paper's section III on-wire format with a small
// framing header.
//
// When zlib compatibility is not needed (e.g. logger-internal storage), the
// raw D/L command stream is simpler and faster to decode in hardware: every
// command is log2(window)+8 bits, no Huffman stage. Layout:
//
//   magic   "LZS1"                     4 bytes
//   window  log2(window size)          1 byte
//   size    original length, LE        8 bytes
//   tokens  token count, LE            8 bytes
//   payload packed D/L commands (lzss::core::pack_raw_tokens)
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "lzss/token.hpp"

namespace lzss::core {

/// Serializes a token stream into the raw container.
[[nodiscard]] std::vector<std::uint8_t> raw_container_pack(std::span<const Token> tokens,
                                                           unsigned window_bits,
                                                           std::uint64_t original_size);

/// Parses and fully decodes a raw container back to the original bytes.
/// Throws DecodeError on malformed framing or payload.
[[nodiscard]] std::vector<std::uint8_t> raw_container_unpack(
    std::span<const std::uint8_t> container);

/// Parses only the header; returns {window_bits, original_size, token_count}.
struct RawHeader {
  unsigned window_bits = 0;
  std::uint64_t original_size = 0;
  std::uint64_t token_count = 0;
};
[[nodiscard]] RawHeader raw_container_header(std::span<const std::uint8_t> container);

}  // namespace lzss::core
