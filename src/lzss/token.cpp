#include "lzss/token.hpp"

#include <stdexcept>

#include "common/bitio.hpp"

namespace lzss::core {

std::vector<std::uint8_t> pack_raw_tokens(std::span<const Token> tokens, unsigned window_bits) {
  bits::BitWriter w;
  for (const Token& t : tokens) {
    if (t.is_literal()) {
      w.put_bits(0, window_bits);
      w.put_bits(t.literal_byte(), 8);
    } else {
      if (t.distance() >= (1u << window_bits))
        throw std::invalid_argument("pack_raw_tokens: distance does not fit the D field");
      if (t.length() < kMinMatch || t.length() > kMinMatch + 255)
        throw std::invalid_argument("pack_raw_tokens: length out of the L field range");
      w.put_bits(t.distance(), window_bits);
      w.put_bits(t.length() - kMinMatch, 8);
    }
  }
  return w.take();
}

std::vector<Token> unpack_raw_tokens(std::span<const std::uint8_t> bytes, std::size_t token_count,
                                     unsigned window_bits) {
  bits::BitReader r(bytes);
  std::vector<Token> tokens;
  tokens.reserve(token_count);
  for (std::size_t i = 0; i < token_count; ++i) {
    const std::uint32_t d = r.get_bits(window_bits);
    const std::uint32_t l = r.get_bits(8);
    tokens.push_back(d == 0 ? Token::literal(static_cast<std::uint8_t>(l))
                            : Token::match(d, l + kMinMatch));
  }
  return tokens;
}

}  // namespace lzss::core
