// SSE2/AVX2 match-length comparer with runtime CPU dispatch.
//
// The software twin of the paper's headline optimization: the hardware
// comparer widens its data bus from 1 to 4 bytes per clock ("the matching
// operation is accelerated by using wider data buses"); here the same idea
// widens the software inner loop from 1 byte per iteration to 16 (SSE2) or
// 32 (AVX2) bytes per vector compare. Every MatchFinder backend funnels its
// candidate verification through match_length(), so the dispatch decision is
// made once per process, not per probe.
//
// Bounds contract: match_length(a, b, n) reads a[i]/b[i] only for i < n.
// The vector loops run while a *full* vector fits strictly inside the
// remaining range (i + width <= n); the sub-vector tail is finished by the
// scalar loop. No masked loads, no page-alignment tricks, no over-read —
// the property the buffer-edge fixtures in tests/test_match_finder.cpp pin
// under ASan.
#pragma once

#include <cstddef>
#include <cstdint>

namespace lzss::core::simd {

enum class CompareIsa : std::uint8_t {
  kScalar = 0,  ///< byte-at-a-time loop (always available; the bench baseline)
  kSse2 = 1,    ///< 16-byte vector compares
  kAvx2 = 2,    ///< 32-byte vector compares
};

[[nodiscard]] const char* isa_name(CompareIsa isa) noexcept;

/// Widest ISA this CPU supports; resolved once and cached.
[[nodiscard]] CompareIsa best_isa() noexcept;

/// The ISA match_length() currently dispatches to.
[[nodiscard]] CompareIsa active_isa() noexcept;

/// Overrides dispatch, clamped to best_isa(). Used by tests (scalar vs
/// vector equivalence) and by the bench sweep's comparer A/B; thread-safe
/// but global — do not flip it while encoders run concurrently.
void force_isa(CompareIsa isa) noexcept;

/// Length of the common prefix of a[0..n) and b[0..n); never reads past
/// either buffer. n == 0 returns 0.
[[nodiscard]] std::size_t match_length(const std::uint8_t* a, const std::uint8_t* b,
                                       std::size_t n) noexcept;

}  // namespace lzss::core::simd
