#include "lzss/raw_container.hpp"

#include "lzss/decoder.hpp"

namespace lzss::core {
namespace {

constexpr std::uint8_t kMagic[4] = {'L', 'Z', 'S', '1'};
constexpr std::size_t kHeaderBytes = 4 + 1 + 8 + 8;

void put_le64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int s = 0; s < 64; s += 8) out.push_back(static_cast<std::uint8_t>((v >> s) & 0xFF));
}

std::uint64_t get_le64(std::span<const std::uint8_t> in, std::size_t at) {
  std::uint64_t v = 0;
  for (int s = 0; s < 8; ++s) v |= static_cast<std::uint64_t>(in[at + s]) << (8 * s);
  return v;
}

}  // namespace

std::vector<std::uint8_t> raw_container_pack(std::span<const Token> tokens, unsigned window_bits,
                                             std::uint64_t original_size) {
  std::vector<std::uint8_t> out;
  out.reserve(kHeaderBytes);
  // push_back rather than range-insert: GCC 12's -Wstringop-overflow misfires
  // on inserting a fixed array into a fresh vector.
  for (const std::uint8_t b : kMagic) out.push_back(b);
  out.push_back(static_cast<std::uint8_t>(window_bits));
  put_le64(out, original_size);
  put_le64(out, tokens.size());
  const auto payload = pack_raw_tokens(tokens, window_bits);
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

RawHeader raw_container_header(std::span<const std::uint8_t> c) {
  if (c.size() < kHeaderBytes) throw DecodeError("raw container: truncated header");
  for (std::size_t i = 0; i < 4; ++i) {
    if (c[i] != kMagic[i]) throw DecodeError("raw container: bad magic");
  }
  RawHeader h;
  h.window_bits = c[4];
  if (h.window_bits < 8 || h.window_bits > 20)
    throw DecodeError("raw container: implausible window");
  h.original_size = get_le64(c, 5);
  h.token_count = get_le64(c, 13);
  return h;
}

std::vector<std::uint8_t> raw_container_unpack(std::span<const std::uint8_t> c) {
  const RawHeader h = raw_container_header(c);
  const std::span<const std::uint8_t> payload = c.subspan(kHeaderBytes);
  const std::uint64_t needed_bits = h.token_count * (h.window_bits + 8);
  if (payload.size() * 8 < needed_bits) throw DecodeError("raw container: truncated payload");
  const auto tokens =
      unpack_raw_tokens(payload, static_cast<std::size_t>(h.token_count), h.window_bits);
  auto data = decode_tokens(tokens, 1u << h.window_bits);
  if (data.size() != h.original_size)
    throw DecodeError("raw container: size mismatch after decode");
  return data;
}

}  // namespace lzss::core
