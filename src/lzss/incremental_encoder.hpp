// Incremental LZSS encoder with bounded memory (zlib's architecture).
//
// SoftwareEncoder sees the whole input at once; this encoder works like
// zlib's deflate proper: a 2xW byte buffer, a sliding window, and the
// infamous *rotation* — every W processed bytes the upper half is moved
// down and every head/prev entry is rebased (entries falling out of the
// window become NIL). That rotation is precisely the software cost the
// paper's generation-bits + split-head-table optimizations eliminate in
// hardware ("the time overhead is negligible in the slow software, however
// it would consume 25-75% of the clock cycles" on the FPGA), so having the
// genuine software mechanism in the repository makes the comparison
// concrete — window_rotations() and rebase counters are exposed for that.
//
// The match finder is deflate_fast (greedy); levels map to chain/nice/
// insert effort exactly as in the hardware model.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "lzss/params.hpp"
#include "lzss/token.hpp"

namespace lzss::core {

class IncrementalEncoder {
 public:
  explicit IncrementalEncoder(MatchParams params);

  /// Feeds a chunk; tokens for everything except a MIN_LOOKAHEAD tail are
  /// appended to @p out. Memory stays O(2 x window + tables) no matter how
  /// much is fed.
  void feed(std::span<const std::uint8_t> chunk, std::vector<Token>& out);

  /// Drains the tail. The encoder is reusable afterwards.
  void finish(std::vector<Token>& out);

  [[nodiscard]] std::uint64_t bytes_consumed() const noexcept { return total_in_; }
  /// Number of window rotations (buffer slides) performed so far.
  [[nodiscard]] std::uint64_t window_rotations() const noexcept { return rotations_; }
  /// head/prev entries rewritten by rotations — the work the paper's
  /// hardware avoids.
  [[nodiscard]] std::uint64_t entries_rebased() const noexcept { return rebased_; }

 private:
  static constexpr std::uint32_t kNil = 0;          // position 0 sacrificed, like zlib
  static constexpr std::uint32_t kMinLookahead = 262;  // MAX_MATCH + MIN_MATCH + 1

  /// Largest match distance the sliding pipeline may emit. zlib's W -
  /// MIN_LOOKAHEAD, except that for windows of MIN_LOOKAHEAD bytes or fewer
  /// (window_bits <= 8) that difference wraps below zero — the unsigned
  /// underflow made the filter accept any distance, including ones too big
  /// for the D field. Halving the window keeps such toy windows usable.
  [[nodiscard]] std::uint32_t max_dist() const noexcept {
    const std::uint32_t w = params_.window_size();
    return w > kMinLookahead ? w - kMinLookahead : w / 2;
  }
  /// Slide once strstart_ clears a full window plus the usable distance
  /// range; equals zlib's 2W - MIN_LOOKAHEAD for normal windows but never
  /// drops below W (sliding with strstart_ < W underflowed strstart_ -= W).
  [[nodiscard]] std::uint32_t slide_threshold() const noexcept {
    return params_.window_size() + max_dist();
  }
  void insert(std::uint32_t pos);
  void slide_window();
  /// Emits tokens while at least @p min_lookahead bytes are buffered ahead.
  void process(std::vector<Token>& out, std::uint32_t min_lookahead);

  MatchParams params_;
  std::vector<std::uint8_t> buf_;   // 2 x window
  std::uint32_t strstart_ = 0;      // next position to encode (buffer index)
  std::uint32_t buffered_ = 0;      // valid bytes in buf_
  std::vector<std::uint32_t> head_;  // hash -> buffer index (kNil = empty)
  std::vector<std::uint32_t> prev_;  // buffer index & wmask -> predecessor
  std::uint64_t total_in_ = 0;
  std::uint64_t rotations_ = 0;
  std::uint64_t rebased_ = 0;
};

}  // namespace lzss::core
