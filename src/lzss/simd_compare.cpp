#include "lzss/simd_compare.hpp"

#include <atomic>
#include <bit>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define LZSS_SIMD_X86 1
#else
#define LZSS_SIMD_X86 0
#endif

namespace lzss::core::simd {
namespace {

std::size_t match_scalar(const std::uint8_t* a, const std::uint8_t* b,
                         std::size_t n) noexcept {
  std::size_t i = 0;
  while (i < n && a[i] == b[i]) ++i;
  return i;
}

#if LZSS_SIMD_X86

__attribute__((target("sse2"))) std::size_t match_sse2(const std::uint8_t* a,
                                                       const std::uint8_t* b,
                                                       std::size_t n) noexcept {
  std::size_t i = 0;
  // Full 16-byte vectors only: i + 16 <= n keeps every lane of both loads
  // strictly inside [0, n).
  while (i + 16 <= n) {
    const __m128i va = _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
    const __m128i vb = _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + i));
    const unsigned eq =
        static_cast<unsigned>(_mm_movemask_epi8(_mm_cmpeq_epi8(va, vb)));
    if (eq != 0xFFFFu) return i + std::countr_one(eq);
    i += 16;
  }
  while (i < n && a[i] == b[i]) ++i;
  return i;
}

__attribute__((target("avx2"))) std::size_t match_avx2(const std::uint8_t* a,
                                                       const std::uint8_t* b,
                                                       std::size_t n) noexcept {
  std::size_t i = 0;
  while (i + 32 <= n) {
    const __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    const unsigned eq =
        static_cast<unsigned>(_mm256_movemask_epi8(_mm256_cmpeq_epi8(va, vb)));
    if (eq != 0xFFFFFFFFu) return i + std::countr_one(eq);
    i += 32;
  }
  // 16-byte step for the 16..31-byte remainder, then scalar for < 16.
  if (i + 16 <= n) {
    const __m128i va = _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
    const __m128i vb = _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + i));
    const unsigned eq =
        static_cast<unsigned>(_mm_movemask_epi8(_mm_cmpeq_epi8(va, vb)));
    if (eq != 0xFFFFu) return i + std::countr_one(eq);
    i += 16;
  }
  while (i < n && a[i] == b[i]) ++i;
  return i;
}

#endif  // LZSS_SIMD_X86

CompareIsa resolve_best() noexcept {
#if LZSS_SIMD_X86
  if (__builtin_cpu_supports("avx2")) return CompareIsa::kAvx2;
  if (__builtin_cpu_supports("sse2")) return CompareIsa::kSse2;
#endif
  return CompareIsa::kScalar;
}

std::atomic<CompareIsa>& active() noexcept {
  static std::atomic<CompareIsa> isa{resolve_best()};
  return isa;
}

}  // namespace

const char* isa_name(CompareIsa isa) noexcept {
  switch (isa) {
    case CompareIsa::kScalar: return "scalar";
    case CompareIsa::kSse2: return "sse2";
    case CompareIsa::kAvx2: return "avx2";
  }
  return "?";
}

CompareIsa best_isa() noexcept {
  static const CompareIsa best = resolve_best();
  return best;
}

CompareIsa active_isa() noexcept { return active().load(std::memory_order_relaxed); }

void force_isa(CompareIsa isa) noexcept {
  if (static_cast<std::uint8_t>(isa) > static_cast<std::uint8_t>(best_isa()))
    isa = best_isa();
  active().store(isa, std::memory_order_relaxed);
}

std::size_t match_length(const std::uint8_t* a, const std::uint8_t* b,
                         std::size_t n) noexcept {
  switch (active().load(std::memory_order_relaxed)) {
#if LZSS_SIMD_X86
    case CompareIsa::kAvx2: return match_avx2(a, b, n);
    case CompareIsa::kSse2: return match_sse2(a, b, n);
#endif
    default: return match_scalar(a, b, n);
  }
}

}  // namespace lzss::core::simd
