// Pluggable match-finder backends for the software compressor.
//
// The paper's profiling (and our live hw_state_cycles_total{state="matching"}
// census) shows match search dominates the compression hot path. This
// interface splits "find the longest match" from "emit tokens" so the search
// strategy can be swapped per request:
//
//   kHashChain    zlib-style head/prev chains — reproduces the exact probe
//                 order of SoftwareEncoder's deflate_fast, so its token
//                 stream is bit-identical to the baseline (pinned by test).
//   kSuffixArray  per-block suffix array + inverse + Kasai LCP; matches are
//                 found by an LCP-bounded walk of rank neighbors. Higher
//                 seed cost, near-constant probe cost, best worst-case
//                 behavior (Ferreira et al., arXiv:0912.5449).
//   kGreedy       LZ4-style single-probe wide-hash table over 4-byte
//                 windows: one candidate per position, verified and
//                 extended by the SIMD comparer (arXiv:2409.12433).
//
// All backends verify/extend candidates through simd::match_length(), the
// software twin of the paper's wide-bus comparer.
//
// Contract:
//   seed(block)                binds the input block and resets all index
//                              state; must be called before the others.
//   find_longest_match(p, b)   returns the longest match for position p that
//                              is strictly longer than b (length 0 = none).
//                              Requires p + kMinMatch <= block.size(). As in
//                              zlib, the call also indexes position p.
//   advance(p, covered)        informs the finder the encoder consumed
//                              `covered` bytes at p as one match; the finder
//                              indexes the skipped positions per its policy.
// Matches always point backwards within the seeded block (distance <= p and
// <= params.max_distance()), so any decoded prefix can resolve them.
#pragma once

#include <cstdint>
#include <memory>
#include <span>

#include "lzss/params.hpp"

namespace lzss::core {

struct MatchCandidate {
  std::uint32_t length = 0;  ///< 0 = no acceptable match
  std::uint32_t distance = 0;
};

/// Per-finder operation census; feeds the matchfinder_* server metrics and
/// the bench sweep.
struct FinderStats {
  std::uint64_t seeds = 0;          ///< blocks seeded (SA rebuilds for kSuffixArray)
  std::uint64_t probes = 0;         ///< candidate positions examined
  std::uint64_t compare_bytes = 0;  ///< bytes run through the comparer
};

class MatchFinder {
 public:
  virtual ~MatchFinder() = default;

  [[nodiscard]] virtual MatchFinderKind kind() const noexcept = 0;
  virtual void seed(std::span<const std::uint8_t> block) = 0;
  [[nodiscard]] virtual MatchCandidate find_longest_match(std::uint64_t pos,
                                                          std::uint32_t best_so_far) = 0;
  virtual void advance(std::uint64_t pos, std::uint32_t covered) = 0;

  [[nodiscard]] const FinderStats& stats() const noexcept { return stats_; }

 protected:
  FinderStats stats_{};
};

[[nodiscard]] std::unique_ptr<MatchFinder> make_match_finder(MatchFinderKind kind,
                                                             const MatchParams& params);

}  // namespace lzss::core
