#include "lzss/params.hpp"

#include <array>
#include <stdexcept>

namespace lzss::core {
namespace {

struct LevelConfig {
  std::uint32_t good, lazy, nice, chain;
  Strategy strategy;
};

// zlib's configuration_table, levels 1..9.
constexpr std::array<LevelConfig, 9> kLevels{{
    {4, 4, 8, 4, Strategy::kFast},        // 1
    {4, 5, 16, 8, Strategy::kFast},       // 2
    {4, 6, 32, 32, Strategy::kFast},      // 3
    {4, 4, 16, 16, Strategy::kSlow},      // 4
    {8, 16, 32, 32, Strategy::kSlow},     // 5
    {8, 16, 128, 128, Strategy::kSlow},   // 6
    {8, 32, 128, 256, Strategy::kSlow},   // 7
    {32, 128, 258, 1024, Strategy::kSlow},// 8
    {32, 258, 258, 4096, Strategy::kSlow} // 9
}};

}  // namespace

MatchParams MatchParams::with_level(int level) const {
  if (level < kMinLevel || level > kMaxLevel)
    throw std::invalid_argument("MatchParams::with_level: level must be 1..9");
  const LevelConfig& c = kLevels[static_cast<std::size_t>(level - 1)];
  MatchParams p = *this;
  p.good_length = c.good;
  p.max_lazy = c.lazy;
  p.nice_length = c.nice;
  p.max_chain = c.chain;
  p.strategy = c.strategy;
  return p;
}

MatchParams MatchParams::speed_optimized() {
  MatchParams p;
  p.window_bits = 12;
  p.hash.bits = 15;
  return p.with_level(kMinLevel);
}

std::string MatchParams::describe() const {
  return "window=" + std::to_string(window_size()) + "B hash=" + std::to_string(hash.bits) +
         "b chain=" + std::to_string(max_chain) +
         (strategy == Strategy::kSlow ? " lazy" : " fast") + " finder=" + finder_name(finder);
}

bool parse_finder_name(std::string_view name, MatchFinderKind& out) noexcept {
  if (name == "hashchain") {
    out = MatchFinderKind::kHashChain;
  } else if (name == "suffixarray") {
    out = MatchFinderKind::kSuffixArray;
  } else if (name == "greedy") {
    out = MatchFinderKind::kGreedy;
  } else {
    return false;
  }
  return true;
}

}  // namespace lzss::core
