// MatchFinderEncoder — the production software compression path.
//
// A deflate_fast-style greedy token emitter over any MatchFinder backend.
// SoftwareEncoder stays as the byte-accurate zlib baseline (its operation
// census drives the PPC440 timing model); this encoder is where backend and
// comparer choices actually change throughput. Over the kHashChain backend
// it emits the exact token stream of SoftwareEncoder's fast strategy — the
// invariant that pins the refactor (tests/test_match_finder.cpp).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "lzss/match_finder.hpp"
#include "lzss/token.hpp"

namespace lzss::core {

class MatchFinderEncoder {
 public:
  /// Backend selected by @p params.finder.
  explicit MatchFinderEncoder(MatchParams params);

  /// Compresses @p input into a token stream (greedy, one pass).
  [[nodiscard]] std::vector<Token> encode(std::span<const std::uint8_t> input);

  [[nodiscard]] MatchFinderKind kind() const noexcept { return finder_->kind(); }
  [[nodiscard]] const FinderStats& finder_stats() const noexcept { return finder_->stats(); }
  [[nodiscard]] const MatchParams& params() const noexcept { return params_; }

 private:
  MatchParams params_;
  std::unique_ptr<MatchFinder> finder_;
};

}  // namespace lzss::core
