#include "lzss/decoder.hpp"

#include <algorithm>

namespace lzss::core {

std::vector<std::uint8_t> decode_tokens(std::span<const Token> tokens,
                                        std::uint32_t window_size) {
  std::vector<std::uint8_t> out;
  for (const Token& t : tokens) {
    if (t.is_literal()) {
      out.push_back(t.literal_byte());
      continue;
    }
    if (t.length() < kMinMatch || t.length() > kMaxMatch)
      throw DecodeError("decode_tokens: match length out of range");
    if (t.distance() == 0 || t.distance() > out.size())
      throw DecodeError("decode_tokens: distance exceeds produced data");
    if (window_size != 0 && t.distance() >= window_size)
      throw DecodeError("decode_tokens: distance exceeds the declared window");
    // Byte-by-byte copy: overlapping matches (distance < length) replicate
    // the most recent bytes, exactly like the hardware copy loop.
    std::size_t src = out.size() - t.distance();
    for (std::uint32_t i = 0; i < t.length(); ++i) out.push_back(out[src + i]);
  }
  return out;
}

bool tokens_reproduce(std::span<const Token> tokens, std::span<const std::uint8_t> expected,
                      std::uint32_t window_size) {
  const auto decoded = decode_tokens(tokens, window_size);
  return decoded.size() == expected.size() &&
         std::equal(decoded.begin(), decoded.end(), expected.begin());
}

}  // namespace lzss::core
