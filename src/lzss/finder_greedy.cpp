// LZ4-style greedy MatchFinder backend.
//
// One wide-hash table slot per 4-byte window, one candidate per position:
// the probe is a single load, and all verification/extension work is one
// simd::match_length() call — the design point of the LZ4 accelerator work
// (arXiv:2409.12433): spend nothing on search, let the wide comparer carry
// the throughput. Ratio trails the chain/SA backends (a 3-byte match at the
// block tail is invisible to a 4-byte hash, and hash collisions evict the
// only candidate), which is exactly the trade the bench sweep quantifies.
#include <algorithm>
#include <cassert>
#include <cstring>
#include <vector>

#include "lzss/match_finder.hpp"
#include "lzss/simd_compare.hpp"
#include "lzss/token.hpp"

namespace lzss::core {
namespace {

class GreedyFinder final : public MatchFinder {
 public:
  explicit GreedyFinder(const MatchParams& params) : params_(params) {
    bits_ = std::clamp(params_.hash.bits, 8u, 17u);
    table_.assign(std::size_t{1} << bits_, kEmpty);
  }

  [[nodiscard]] MatchFinderKind kind() const noexcept override {
    return MatchFinderKind::kGreedy;
  }

  void seed(std::span<const std::uint8_t> block) override {
    in_ = block;
    std::fill(table_.begin(), table_.end(), kEmpty);
    ++stats_.seeds;
  }

  [[nodiscard]] MatchCandidate find_longest_match(std::uint64_t pos,
                                                  std::uint32_t best_so_far) override {
    const std::size_t n = in_.size();
    assert(pos + kMinMatch <= n);
    if (pos + sizeof(std::uint32_t) > n) return {};  // 4-byte hash window; tail -> literals

    const std::uint32_t h = hash4(read32(pos));
    const std::uint32_t cand = table_[h];
    table_[h] = static_cast<std::uint32_t>(pos);
    if (cand == kEmpty || cand >= pos || pos - cand > params_.max_distance()) return {};

    ++stats_.probes;
    const std::uint32_t max_len =
        static_cast<std::uint32_t>(std::min<std::uint64_t>(kMaxMatch, n - pos));
    const std::uint32_t len = static_cast<std::uint32_t>(
        simd::match_length(in_.data() + cand, in_.data() + pos, max_len));
    stats_.compare_bytes += std::min<std::uint32_t>(len + 1, max_len);
    if (len < kMinMatch || len <= best_so_far) return {};
    return {len, static_cast<std::uint32_t>(pos - cand)};
  }

  void advance(std::uint64_t pos, std::uint32_t covered) override {
    // LZ4 idiom: index the position two bytes before the match end so
    // overlapping continuations stay discoverable without paying for every
    // skipped position.
    const std::uint64_t end = pos + covered;
    if (end >= 2) {
      const std::uint64_t k = end - 2;
      if (k > pos && k + sizeof(std::uint32_t) <= in_.size()) {
        table_[hash4(read32(k))] = static_cast<std::uint32_t>(k);
      }
    }
  }

 private:
  static constexpr std::uint32_t kEmpty = ~std::uint32_t{0};

  [[nodiscard]] std::uint32_t read32(std::uint64_t pos) const noexcept {
    std::uint32_t v;
    std::memcpy(&v, in_.data() + pos, sizeof(v));
    return v;
  }

  [[nodiscard]] std::uint32_t hash4(std::uint32_t v) const noexcept {
    return (v * 2654435761u) >> (32u - bits_);
  }

  MatchParams params_;
  unsigned bits_;
  std::span<const std::uint8_t> in_;
  std::vector<std::uint32_t> table_;  // wide hash -> most recent position
};

}  // namespace

std::unique_ptr<MatchFinder> make_greedy_finder(const MatchParams& params) {
  return std::make_unique<GreedyFinder>(params);
}

}  // namespace lzss::core
