// Match-finder parameters and zlib-equivalent compression levels.
//
// The paper takes "the minimum ZLib compression level as a reference point"
// and explores raising the matching-iteration limit (fig. 4: ~20 % better
// compression for ~82 % lower speed). We mirror zlib's configuration table so
// "min level" and "max level" mean exactly what they meant to the authors.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "lzss/hash.hpp"

namespace lzss::core {

/// Match-search strategy, as in zlib.
enum class Strategy : std::uint8_t {
  kFast,  ///< deflate_fast: greedy, no lazy evaluation (levels 1..3)
  kSlow,  ///< deflate_slow: lazy matching (levels 4..9)
};

/// Which MatchFinder backend drives the software compressor
/// (lzss/match_finder.hpp; trade-offs in docs/MATCHFINDER.md).
enum class MatchFinderKind : std::uint8_t {
  kHashChain = 0,    ///< zlib-style head/prev chains (the sw_encoder baseline)
  kSuffixArray = 1,  ///< per-block suffix array + LCP-bounded neighbor search
  kGreedy = 2,       ///< LZ4-style single-probe wide-hash table
};

[[nodiscard]] constexpr const char* finder_name(MatchFinderKind kind) noexcept {
  switch (kind) {
    case MatchFinderKind::kHashChain: return "hashchain";
    case MatchFinderKind::kSuffixArray: return "suffixarray";
    case MatchFinderKind::kGreedy: return "greedy";
  }
  return "?";
}

/// Parses a finder_name() string; returns false (leaving @p out untouched)
/// on unknown names.
[[nodiscard]] bool parse_finder_name(std::string_view name, MatchFinderKind& out) noexcept;

struct MatchParams {
  unsigned window_bits = 12;  ///< dictionary is 2^window_bits bytes (4 KB default)
  HashSpec hash{};            ///< hash table spec (bits default 15)

  // zlib configuration_table knobs.
  std::uint32_t good_length = 4;   ///< reduce chain effort above this match length
  std::uint32_t max_lazy = 4;      ///< deflate_fast: max_insert_length; slow: lazy threshold
  std::uint32_t nice_length = 8;   ///< stop searching when a match this long is found
  std::uint32_t max_chain = 4;     ///< matching iteration limit (chain walk bound)
  Strategy strategy = Strategy::kFast;
  MatchFinderKind finder = MatchFinderKind::kHashChain;  ///< MatchFinderEncoder backend

  [[nodiscard]] constexpr std::uint32_t window_size() const noexcept {
    return 1u << window_bits;
  }
  /// Largest encodable distance: the D field has window_bits bits and 0 is
  /// reserved for literals, so a full-window distance cannot be represented.
  [[nodiscard]] constexpr std::uint32_t max_distance() const noexcept {
    return window_size() - 1;
  }

  /// zlib level 1..9 preset (window/hash preserved from *this).
  [[nodiscard]] MatchParams with_level(int level) const;

  /// The paper's headline speed configuration: 4 KB dictionary, 15-bit hash,
  /// minimum compression level.
  [[nodiscard]] static MatchParams speed_optimized();

  [[nodiscard]] std::string describe() const;
};

/// Minimum / maximum compression level identifiers used by fig. 4.
inline constexpr int kMinLevel = 1;
inline constexpr int kMaxLevel = 9;

}  // namespace lzss::core
