// Software LZSS compressor — the zlib-algorithm-equivalent baseline.
//
// This is the reference the paper compares against ("ZLib running on the
// PowerPC processor inside the FPGA"). It reproduces zlib's deflate_fast
// (levels 1-3, greedy) and deflate_slow (levels 4-9, lazy matching) match
// finders over head/prev hash chains, emitting the same D/L token stream the
// hardware produces. Besides the tokens it records an operation census
// (hash computations, chain probes, compared bytes, ...) which drives the
// PowerPC-440 timing model used for Table I.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "lzss/params.hpp"
#include "lzss/token.hpp"

namespace lzss::core {

/// Which data structure a traced memory reference touched.
enum class MemRegion : std::uint8_t {
  kWindow,  ///< input/window bytes (1-byte elements)
  kHead,    ///< hash head table (2-byte Pos entries, as in zlib)
  kPrev,    ///< prev chain table (2-byte Pos entries)
};

/// Observer for the encoder's memory reference stream; drives the
/// trace-based PPC440 cache model (swmodel/cache_sim.hpp).
class AccessObserver {
 public:
  virtual ~AccessObserver() = default;
  /// @param index element index within the region (not a byte address).
  virtual void on_access(MemRegion region, std::uint64_t index) = 0;
};

/// Operation census of one encode run; inputs to the SW timing model.
struct EncodeStats {
  std::uint64_t hash_computations = 0;  ///< 3-byte hash evaluations
  std::uint64_t insertions = 0;         ///< head/prev chain insertions
  std::uint64_t chain_probes = 0;       ///< candidate positions visited
  std::uint64_t compare_bytes = 0;      ///< bytes compared during matching
  std::uint64_t literals = 0;           ///< literal tokens emitted
  std::uint64_t matches = 0;            ///< match tokens emitted
  std::uint64_t match_bytes = 0;        ///< input bytes covered by matches
  std::uint64_t lazy_retries = 0;       ///< slow path: matches re-evaluated at +1

  [[nodiscard]] std::uint64_t tokens() const noexcept { return literals + matches; }
};

class SoftwareEncoder {
 public:
  explicit SoftwareEncoder(MatchParams params);

  /// Compresses @p input into a token stream. Resets statistics first.
  [[nodiscard]] std::vector<Token> encode(std::span<const std::uint8_t> input);

  [[nodiscard]] const EncodeStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const MatchParams& params() const noexcept { return params_; }

  /// Streams every head/prev/window reference to @p observer during
  /// encode(); pass nullptr to disable (default — near-zero overhead).
  void set_access_observer(AccessObserver* observer) noexcept { observer_ = observer; }

 private:
  struct Match {
    std::uint32_t length = 0;
    std::uint32_t distance = 0;
  };

  static constexpr std::uint64_t kNil = ~std::uint64_t{0};
  // zlib's TOO_FAR: a minimal match this distant is not worth taking.
  static constexpr std::uint64_t kTooFar = 4096;

  void reset_tables();
  /// Inserts position @p pos into the chains; returns the previous head.
  std::uint64_t insert(std::span<const std::uint8_t> in, std::uint64_t pos);
  /// zlib longest_match: walks the chain from @p head, only accepting
  /// matches longer than @p best_so_far.
  Match longest_match(std::span<const std::uint8_t> in, std::uint64_t pos, std::uint64_t head,
                      std::uint32_t best_so_far);

  void encode_fast(std::span<const std::uint8_t> in, std::vector<Token>& out);
  void encode_slow(std::span<const std::uint8_t> in, std::vector<Token>& out);

  void trace(MemRegion region, std::uint64_t index) {
    if (observer_ != nullptr) observer_->on_access(region, index);
  }

  MatchParams params_;
  EncodeStats stats_;
  AccessObserver* observer_ = nullptr;
  std::vector<std::uint64_t> head_;  // hash -> most recent position, kNil when empty
  std::vector<std::uint64_t> prev_;  // pos & wmask -> previous position in chain
};

}  // namespace lzss::core
