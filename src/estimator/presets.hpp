// Named configuration presets — the estimation tool's "several presets".
#pragma once

#include <string>
#include <vector>

#include "hw/config.hpp"

namespace lzss::est {

struct Preset {
  std::string name;
  std::string intent;  ///< one-line description shown by the CLI
  hw::HwConfig config;
};

/// The standard preset ladder: from the paper's Table I speed point to a
/// BRAM-frugal corner and a ratio-first corner.
[[nodiscard]] std::vector<Preset> standard_presets();

/// Finds a preset by name; throws std::invalid_argument when unknown.
[[nodiscard]] Preset preset_by_name(const std::string& name);

}  // namespace lzss::est
