// Parameter sweeps — the C# front-end's "construct series of parameter sets
// (e.g. iterating an arbitrary parameter over a given range)" as a library.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "estimator/evaluate.hpp"

namespace lzss::est {

/// A named axis: applies one parameter value to a base configuration.
struct Axis {
  std::string name;  ///< e.g. "dict_bits"
  std::vector<std::int64_t> values;
  std::function<hw::HwConfig(const hw::HwConfig&, std::int64_t)> apply;
};

/// Predefined axes matching the paper's generics.
[[nodiscard]] Axis dict_bits_axis(std::vector<std::int64_t> values);
[[nodiscard]] Axis hash_bits_axis(std::vector<std::int64_t> values);
[[nodiscard]] Axis level_axis(std::vector<std::int64_t> values);
[[nodiscard]] Axis generation_bits_axis(std::vector<std::int64_t> values);
[[nodiscard]] Axis bus_width_axis(std::vector<std::int64_t> values);
[[nodiscard]] Axis named_axis(const std::string& name, std::vector<std::int64_t> values);

struct SweepPoint {
  std::vector<std::int64_t> coordinates;  ///< one value per axis
  Evaluation evaluation;
};

struct SweepResult {
  std::vector<std::string> axis_names;
  std::vector<SweepPoint> points;
};

/// Evaluates the cartesian product of up to three axes over @p data.
[[nodiscard]] SweepResult run_sweep(const hw::HwConfig& base, std::vector<Axis> axes,
                                    std::span<const std::uint8_t> data);

}  // namespace lzss::est
