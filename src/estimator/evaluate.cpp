#include "estimator/evaluate.hpp"

#include <stdexcept>

#include "deflate/encoder.hpp"
#include "lzss/decoder.hpp"

namespace lzss::est {

Evaluation evaluate(const hw::HwConfig& config, std::span<const std::uint8_t> data,
                    bool verify) {
  Evaluation ev;
  ev.config = config;
  ev.input_bytes = data.size();

  hw::Compressor comp(config);
  auto result = comp.compress(data);
  if (verify && !core::tokens_reproduce(result.tokens, data)) {
    throw std::runtime_error("estimator: token stream does not reproduce the input for " +
                             config.describe());
  }
  ev.stats = result.stats;
  ev.compressed_bytes = (deflate::fixed_block_bits(result.tokens) + 7) / 8;
  ev.resources = fpga::estimate_resources(config);
  return ev;
}

}  // namespace lzss::est
