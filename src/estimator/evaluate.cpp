#include "estimator/evaluate.hpp"

#include <stdexcept>
#include <string>

#include "deflate/encoder.hpp"
#include "lzss/decoder.hpp"
#include "lzss/mf_encoder.hpp"

namespace lzss::est {

Evaluation evaluate(const hw::HwConfig& config, std::span<const std::uint8_t> data,
                    bool verify) {
  Evaluation ev;
  ev.config = config;
  ev.input_bytes = data.size();

  hw::Compressor comp(config);
  auto result = comp.compress(data);
  if (verify && !core::tokens_reproduce(result.tokens, data)) {
    throw std::runtime_error("estimator: token stream does not reproduce the input for " +
                             config.describe());
  }
  ev.stats = result.stats;
  ev.compressed_bytes = (deflate::fixed_block_bits(result.tokens) + 7) / 8;
  ev.resources = fpga::estimate_resources(config);
  return ev;
}

SoftwareEvaluation evaluate_software(const core::MatchParams& params,
                                     std::span<const std::uint8_t> data, bool verify) {
  SoftwareEvaluation ev;
  ev.params = params;
  ev.input_bytes = data.size();

  core::MatchFinderEncoder encoder(params);
  const std::vector<core::Token> tokens = encoder.encode(data);
  if (verify && !core::tokens_reproduce(tokens, data)) {
    throw std::runtime_error(std::string("estimator: software token stream does not reproduce "
                                         "the input for finder=") +
                             core::finder_name(params.finder));
  }
  ev.finder = encoder.finder_stats();
  ev.tokens = tokens.size();
  ev.compressed_bytes = (deflate::fixed_block_bits(tokens) + 7) / 8;
  return ev;
}

}  // namespace lzss::est
