// Token-stream and chain-behaviour analysis.
//
// The paper's design-space arguments all reduce to distributional facts:
// hash collisions waste matching iterations (fig. 3), longer dictionaries
// find more distant matches (fig. 2), and deeper chains trade cycles for
// length (fig. 4). This module extracts those distributions from a token
// stream / compressor run so the estimation tool can show *why* a
// configuration behaves the way it does, not just how fast it is.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>

#include "hw/cycle_stats.hpp"
#include "lzss/token.hpp"

namespace lzss::est {

/// Distribution report for one compressed stream.
struct StreamAnalysis {
  std::uint64_t literals = 0;
  std::uint64_t matches = 0;
  std::uint64_t match_bytes = 0;

  /// Histogram over the 29 RFC 1951 length-code bands (symbol 257+i).
  std::array<std::uint64_t, 29> length_band{};
  /// Histogram over the 30 RFC 1951 distance-code bands.
  std::array<std::uint64_t, 30> distance_band{};
  /// Literal byte frequency (for entropy).
  std::array<std::uint64_t, 256> literal_freq{};

  [[nodiscard]] double mean_match_length() const noexcept;
  [[nodiscard]] double mean_match_distance() const noexcept;
  /// Shannon entropy of the literal bytes, bits/byte.
  [[nodiscard]] double literal_entropy_bits() const noexcept;
  /// Fraction of input bytes covered by matches.
  [[nodiscard]] double match_coverage() const noexcept;

  // Accumulators used while scanning (sums for the means).
  std::uint64_t length_sum = 0;
  std::uint64_t distance_sum = 0;
};

/// Scans a token stream.
[[nodiscard]] StreamAnalysis analyze_tokens(std::span<const core::Token> tokens);

/// Matching-efficiency figures derived from a hardware run.
struct MatchingAnalysis {
  double probes_per_position = 0;   ///< chain probes per match attempt
  double compare_bytes_per_probe = 0;
  double cycles_per_token = 0;
  double prefetch_hit_rate = 0;     ///< fraction of advances skipping WaitData
};

[[nodiscard]] MatchingAnalysis analyze_matching(const hw::CycleStats& stats);

/// Human-readable report of both analyses.
[[nodiscard]] std::string format_analysis(const StreamAnalysis& stream,
                                          const MatchingAnalysis& matching);

}  // namespace lzss::est
