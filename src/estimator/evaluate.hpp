// Design-point evaluation — the core of the paper's estimation tool.
//
// "The tool consists of a flexible cycle-accurate C++ model and a C# front
// end. The C++ model accepts various design parameters (e.g. window size),
// compresses reference data blocks and produces various cycle-accurate
// statistics." evaluate() is exactly that: one configuration, one data
// block, full report (BRAM amount, compression ratio, clock cycle usage).
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "fpga/resource_model.hpp"
#include "hw/compressor.hpp"
#include "hw/config.hpp"
#include "lzss/match_finder.hpp"

namespace lzss::est {

struct Evaluation {
  hw::HwConfig config;
  hw::CycleStats stats;
  fpga::ResourceReport resources;
  std::uint64_t input_bytes = 0;
  std::uint64_t compressed_bytes = 0;  ///< fixed-Huffman Deflate payload

  [[nodiscard]] double ratio() const noexcept {
    return compressed_bytes == 0 ? 0.0
                                 : static_cast<double>(input_bytes) /
                                       static_cast<double>(compressed_bytes);
  }
  [[nodiscard]] double cycles_per_byte() const noexcept { return stats.cycles_per_byte(); }
  [[nodiscard]] double mb_per_s() const noexcept { return stats.mb_per_s(config.clock_mhz); }
  /// Output size scaled to what a @p reference_bytes input would produce —
  /// lets a small sample stand in for the paper's 100 MB runs.
  [[nodiscard]] double scaled_compressed_mb(std::uint64_t reference_bytes) const noexcept {
    return input_bytes == 0 ? 0.0
                            : static_cast<double>(compressed_bytes) *
                                  static_cast<double>(reference_bytes) /
                                  static_cast<double>(input_bytes) / 1e6;
  }
};

/// Runs the cycle-accurate model over @p data and assembles the report.
/// When @p verify is true (default) the token stream is checked against the
/// input byte-for-byte; a mismatch throws.
[[nodiscard]] Evaluation evaluate(const hw::HwConfig& config, std::span<const std::uint8_t> data,
                                  bool verify = true);

/// Software-path counterpart of evaluate(): one MatchFinder backend
/// (params.finder), one data block, ratio + finder census. No cycle model —
/// the software path is timed by wall clock (bench/ext_server_throughput's
/// matchfinder sweep), not estimated; this report carries the
/// size/effort half of the design space.
struct SoftwareEvaluation {
  core::MatchParams params;
  core::FinderStats finder;
  std::uint64_t input_bytes = 0;
  std::uint64_t compressed_bytes = 0;  ///< fixed-Huffman Deflate payload
  std::uint64_t tokens = 0;

  [[nodiscard]] double ratio() const noexcept {
    return compressed_bytes == 0 ? 0.0
                                 : static_cast<double>(input_bytes) /
                                       static_cast<double>(compressed_bytes);
  }
};

/// When @p verify is true the token stream is checked against the input
/// byte-for-byte; a mismatch throws.
[[nodiscard]] SoftwareEvaluation evaluate_software(const core::MatchParams& params,
                                                   std::span<const std::uint8_t> data,
                                                   bool verify = true);

}  // namespace lzss::est
