#include "estimator/report.hpp"

#include <cstdio>
#include <sstream>

namespace lzss::est {
namespace {

std::string fmt(const char* f, double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, f, v);
  return buf;
}

}  // namespace

std::string format_evaluation(const Evaluation& ev) {
  std::ostringstream os;
  os << "configuration : " << ev.config.describe() << '\n';
  os << "input         : " << ev.input_bytes << " bytes\n";
  os << "compressed    : " << ev.compressed_bytes << " bytes (ratio "
     << fmt("%.3f", ev.ratio()) << ")\n";
  os << "cycles        : " << ev.stats.total_cycles << " (" << fmt("%.3f", ev.cycles_per_byte())
     << " cycles/byte, " << fmt("%.1f", ev.mb_per_s()) << " MB/s @ "
     << fmt("%.0f", ev.config.clock_mhz) << " MHz)\n";
  os << "state split   : wait " << fmt("%.1f", 100 * ev.stats.fraction(ev.stats.waiting))
     << "%, fetch " << fmt("%.1f", 100 * ev.stats.fraction(ev.stats.fetching)) << "%, match "
     << fmt("%.1f", 100 * ev.stats.fraction(ev.stats.matching)) << "%, output "
     << fmt("%.1f", 100 * ev.stats.fraction(ev.stats.output)) << "%, update "
     << fmt("%.1f", 100 * ev.stats.fraction(ev.stats.updating)) << "%, rotate "
     << fmt("%.1f", 100 * ev.stats.fraction(ev.stats.rotating)) << "%\n";
  os << "block RAMs    : " << ev.resources.bram36_total << " x RAMB36 ("
     << fmt("%.1f", ev.resources.bram_percent()) << "% of " << ev.resources.device.name << ")\n";
  for (const auto& m : ev.resources.memories) {
    os << "  " << m.name << ": " << m.depth << " x " << m.width_bits << "b -> " << m.bram36
       << " RAMB36\n";
  }
  os << "logic (est.)  : " << ev.resources.luts << " LUTs ("
     << fmt("%.1f", ev.resources.lut_percent()) << "%), " << ev.resources.registers
     << " registers\n";
  return os.str();
}

std::string format_sweep_table(const SweepResult& sweep) {
  std::ostringstream os;
  for (const auto& n : sweep.axis_names) os << n << '\t';
  os << "ratio\tcyc/B\tMB/s\tRAMB36\tLUTs\n";
  for (const auto& p : sweep.points) {
    for (const auto c : p.coordinates) os << c << '\t';
    os << fmt("%.3f", p.evaluation.ratio()) << '\t'
       << fmt("%.3f", p.evaluation.cycles_per_byte()) << '\t'
       << fmt("%.1f", p.evaluation.mb_per_s()) << '\t' << p.evaluation.resources.bram36_total
       << '\t' << p.evaluation.resources.luts << '\n';
  }
  return os.str();
}

std::string format_sweep_csv(const SweepResult& sweep) {
  std::ostringstream os;
  for (const auto& n : sweep.axis_names) os << n << ',';
  os << "input_bytes,compressed_bytes,ratio,cycles,cycles_per_byte,mb_per_s,bram36,bram18,"
        "luts,registers,waiting,fetching,matching,output,updating,rotating\n";
  for (const auto& p : sweep.points) {
    for (const auto c : p.coordinates) os << c << ',';
    const auto& e = p.evaluation;
    os << e.input_bytes << ',' << e.compressed_bytes << ',' << fmt("%.6f", e.ratio()) << ','
       << e.stats.total_cycles << ',' << fmt("%.6f", e.cycles_per_byte()) << ','
       << fmt("%.3f", e.mb_per_s()) << ',' << e.resources.bram36_total << ','
       << e.resources.bram18_total << ',' << e.resources.luts << ',' << e.resources.registers
       << ',' << e.stats.waiting << ',' << e.stats.fetching << ',' << e.stats.matching << ','
       << e.stats.output << ',' << e.stats.updating << ',' << e.stats.rotating << '\n';
  }
  return os.str();
}

}  // namespace lzss::est
