#include "estimator/presets.hpp"

#include <stdexcept>

namespace lzss::est {

std::vector<Preset> standard_presets() {
  std::vector<Preset> out;

  {
    Preset p;
    p.name = "speed";
    p.intent = "the paper's Table I point: 4 KB dict, 15-bit hash, min level (~50 MB/s)";
    p.config = hw::HwConfig::speed_optimized();
    out.push_back(p);
  }
  {
    Preset p;
    p.name = "balanced";
    p.intent = "8 KB dict, 13-bit hash, level 3: better ratio at a modest speed cost";
    hw::HwConfig c = hw::HwConfig::speed_optimized().with_level(3);
    c.dict_bits = 13;
    c.hash.bits = 13;
    p.config = c;
    out.push_back(p);
  }
  {
    Preset p;
    p.name = "ratio";
    p.intent = "64 KB dict, 15-bit hash, max level: best compression the design reaches";
    hw::HwConfig c = hw::HwConfig::speed_optimized().with_level(9);
    c.dict_bits = 16;
    p.config = c;
    out.push_back(p);
  }
  {
    Preset p;
    p.name = "min-bram";
    p.intent = "1 KB dict, 9-bit hash: smallest block-RAM footprint that still compresses";
    hw::HwConfig c = hw::HwConfig::speed_optimized();
    c.dict_bits = 10;
    c.hash.bits = 9;
    c.generation_bits = 2;
    p.config = c;
    out.push_back(p);
  }
  {
    Preset p;
    p.name = "baseline-2007";
    p.intent = "the [11]-like reference: 1-byte bus, no prefetch, frequent rotation";
    hw::HwConfig c = hw::HwConfig::speed_optimized();
    c.bus_width_bytes = 1;
    c.hash_prefetch = false;
    c.generation_bits = 1;
    c.head_split = 1;
    c.relative_next = false;
    p.config = c;
    out.push_back(p);
  }
  return out;
}

Preset preset_by_name(const std::string& name) {
  for (auto& p : standard_presets()) {
    if (p.name == name) return p;
  }
  throw std::invalid_argument("preset_by_name: unknown preset '" + name + "'");
}

}  // namespace lzss::est
