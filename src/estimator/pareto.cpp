#include "estimator/pareto.hpp"

namespace lzss::est {

std::vector<std::size_t> pareto_front(const SweepResult& sweep) {
  std::vector<Objectives> objs;
  objs.reserve(sweep.points.size());
  for (const auto& p : sweep.points) objs.push_back(Objectives::of(p.evaluation));

  std::vector<std::size_t> front;
  for (std::size_t i = 0; i < objs.size(); ++i) {
    bool dominated = false;
    for (std::size_t j = 0; j < objs.size() && !dominated; ++j) {
      if (j != i && objs[j].dominates(objs[i])) dominated = true;
    }
    if (!dominated) front.push_back(i);
  }
  return front;
}

}  // namespace lzss::est
