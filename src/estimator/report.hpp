// Text and CSV rendering of evaluations and sweeps.
#pragma once

#include <iosfwd>
#include <string>

#include "estimator/sweep.hpp"

namespace lzss::est {

/// Human-readable multi-line report for one design point.
[[nodiscard]] std::string format_evaluation(const Evaluation& ev);

/// One-line-per-point table; columns: coordinates, ratio, cyc/B, MB/s, BRAM.
[[nodiscard]] std::string format_sweep_table(const SweepResult& sweep);

/// Machine-readable CSV with a header row.
[[nodiscard]] std::string format_sweep_csv(const SweepResult& sweep);

}  // namespace lzss::est
