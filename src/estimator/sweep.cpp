#include "estimator/sweep.hpp"

#include <stdexcept>

namespace lzss::est {

Axis dict_bits_axis(std::vector<std::int64_t> values) {
  return {"dict_bits", std::move(values), [](const hw::HwConfig& base, std::int64_t v) {
            hw::HwConfig c = base;
            c.dict_bits = static_cast<unsigned>(v);
            return c;
          }};
}

Axis hash_bits_axis(std::vector<std::int64_t> values) {
  return {"hash_bits", std::move(values), [](const hw::HwConfig& base, std::int64_t v) {
            hw::HwConfig c = base;
            c.hash.bits = static_cast<unsigned>(v);
            return c;
          }};
}

Axis level_axis(std::vector<std::int64_t> values) {
  return {"level", std::move(values), [](const hw::HwConfig& base, std::int64_t v) {
            return base.with_level(static_cast<int>(v));
          }};
}

Axis generation_bits_axis(std::vector<std::int64_t> values) {
  return {"generation_bits", std::move(values), [](const hw::HwConfig& base, std::int64_t v) {
            hw::HwConfig c = base;
            c.generation_bits = static_cast<unsigned>(v);
            return c;
          }};
}

Axis bus_width_axis(std::vector<std::int64_t> values) {
  return {"bus_width", std::move(values), [](const hw::HwConfig& base, std::int64_t v) {
            hw::HwConfig c = base;
            c.bus_width_bytes = static_cast<unsigned>(v);
            return c;
          }};
}

Axis named_axis(const std::string& name, std::vector<std::int64_t> values) {
  if (name == "dict_bits") return dict_bits_axis(std::move(values));
  if (name == "hash_bits") return hash_bits_axis(std::move(values));
  if (name == "level") return level_axis(std::move(values));
  if (name == "generation_bits") return generation_bits_axis(std::move(values));
  if (name == "bus_width") return bus_width_axis(std::move(values));
  throw std::invalid_argument("named_axis: unknown axis '" + name + "'");
}

SweepResult run_sweep(const hw::HwConfig& base, std::vector<Axis> axes,
                      std::span<const std::uint8_t> data) {
  if (axes.empty() || axes.size() > 3)
    throw std::invalid_argument("run_sweep: 1..3 axes supported");

  SweepResult result;
  for (const auto& a : axes) result.axis_names.push_back(a.name);

  // Cartesian product via an odometer over axis indices.
  std::vector<std::size_t> idx(axes.size(), 0);
  for (;;) {
    hw::HwConfig cfg = base;
    std::vector<std::int64_t> coords;
    coords.reserve(axes.size());
    for (std::size_t d = 0; d < axes.size(); ++d) {
      const std::int64_t v = axes[d].values[idx[d]];
      cfg = axes[d].apply(cfg, v);
      coords.push_back(v);
    }
    result.points.push_back({std::move(coords), evaluate(cfg, data)});

    std::size_t d = axes.size();
    while (d > 0) {
      --d;
      if (++idx[d] < axes[d].values.size()) break;
      idx[d] = 0;
      if (d == 0) return result;
    }
  }
}

}  // namespace lzss::est
