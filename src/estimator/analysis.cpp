#include "estimator/analysis.hpp"

#include <cmath>
#include <sstream>

#include "deflate/fixed_tables.hpp"

namespace lzss::est {

double StreamAnalysis::mean_match_length() const noexcept {
  return matches == 0 ? 0.0 : static_cast<double>(length_sum) / static_cast<double>(matches);
}

double StreamAnalysis::mean_match_distance() const noexcept {
  return matches == 0 ? 0.0 : static_cast<double>(distance_sum) / static_cast<double>(matches);
}

double StreamAnalysis::literal_entropy_bits() const noexcept {
  if (literals == 0) return 0.0;
  double h = 0.0;
  for (const auto f : literal_freq) {
    if (f == 0) continue;
    const double p = static_cast<double>(f) / static_cast<double>(literals);
    h -= p * std::log2(p);
  }
  return h;
}

double StreamAnalysis::match_coverage() const noexcept {
  const std::uint64_t total = literals + match_bytes;
  return total == 0 ? 0.0 : static_cast<double>(match_bytes) / static_cast<double>(total);
}

StreamAnalysis analyze_tokens(std::span<const core::Token> tokens) {
  StreamAnalysis a;
  for (const core::Token& t : tokens) {
    if (t.is_literal()) {
      ++a.literals;
      ++a.literal_freq[t.literal_byte()];
      continue;
    }
    ++a.matches;
    a.match_bytes += t.length();
    a.length_sum += t.length();
    a.distance_sum += t.distance();
    a.length_band[deflate::length_code(t.length()).symbol - deflate::kFirstLengthCode]++;
    a.distance_band[deflate::distance_code(t.distance()).symbol]++;
  }
  return a;
}

MatchingAnalysis analyze_matching(const hw::CycleStats& s) {
  MatchingAnalysis m;
  const std::uint64_t attempts = s.tokens();
  if (attempts != 0) {
    m.probes_per_position = static_cast<double>(s.chain_probes) / static_cast<double>(attempts);
    m.cycles_per_token =
        static_cast<double>(s.total_cycles) / static_cast<double>(attempts);
    m.prefetch_hit_rate =
        static_cast<double>(s.prefetch_hits) / static_cast<double>(attempts);
  }
  if (s.chain_probes != 0) {
    m.compare_bytes_per_probe =
        static_cast<double>(s.compare_bytes) / static_cast<double>(s.chain_probes);
  }
  return m;
}

std::string format_analysis(const StreamAnalysis& a, const MatchingAnalysis& m) {
  std::ostringstream os;
  char buf[160];

  std::snprintf(buf, sizeof buf,
                "tokens        : %llu literals, %llu matches (coverage %.1f%%)\n",
                static_cast<unsigned long long>(a.literals),
                static_cast<unsigned long long>(a.matches), 100.0 * a.match_coverage());
  os << buf;
  std::snprintf(buf, sizeof buf,
                "match profile : mean length %.2f, mean distance %.0f\n",
                a.mean_match_length(), a.mean_match_distance());
  os << buf;
  std::snprintf(buf, sizeof buf, "literal bytes : %.2f bits/byte entropy\n",
                a.literal_entropy_bits());
  os << buf;
  std::snprintf(buf, sizeof buf,
                "matching      : %.2f probes/position, %.2f compared bytes/probe,\n"
                "                %.2f cycles/token, %.0f%% prefetch hits\n",
                m.probes_per_position, m.compare_bytes_per_probe, m.cycles_per_token,
                100.0 * m.prefetch_hit_rate);
  os << buf;

  os << "length bands  :";
  for (std::size_t i = 0; i < a.length_band.size(); ++i) {
    if (a.length_band[i] != 0) {
      std::snprintf(buf, sizeof buf, " %u:%llu",
                    static_cast<unsigned>(deflate::length_base(
                        static_cast<unsigned>(deflate::kFirstLengthCode + i))),
                    static_cast<unsigned long long>(a.length_band[i]));
      os << buf;
    }
  }
  os << "\ndistance bands:";
  for (std::size_t i = 0; i < a.distance_band.size(); ++i) {
    if (a.distance_band[i] != 0) {
      std::snprintf(buf, sizeof buf, " %u:%llu",
                    static_cast<unsigned>(deflate::distance_base(static_cast<unsigned>(i))),
                    static_cast<unsigned long long>(a.distance_band[i]));
      os << buf;
    }
  }
  os << '\n';
  return os.str();
}

}  // namespace lzss::est
