// Pareto-front extraction over sweep results.
//
// Design-space exploration ends with a choice between speed, compression
// ratio and block-RAM cost. A configuration is worth considering only if no
// other one is at least as good on all three axes and better on one — the
// Pareto front. This pass turns a raw sweep into that shortlist.
#pragma once

#include <vector>

#include "estimator/sweep.hpp"

namespace lzss::est {

/// The objectives considered (all to be maximized; BRAM is negated).
struct Objectives {
  double mb_per_s = 0;
  double ratio = 0;
  double neg_bram36 = 0;

  [[nodiscard]] static Objectives of(const Evaluation& ev) noexcept {
    return {ev.mb_per_s(), ev.ratio(),
            -static_cast<double>(ev.resources.bram36_total)};
  }
  /// True when *this is at least as good everywhere and better somewhere.
  [[nodiscard]] bool dominates(const Objectives& o) const noexcept {
    const bool ge = mb_per_s >= o.mb_per_s && ratio >= o.ratio && neg_bram36 >= o.neg_bram36;
    const bool gt = mb_per_s > o.mb_per_s || ratio > o.ratio || neg_bram36 > o.neg_bram36;
    return ge && gt;
  }
};

/// Returns the indices (into sweep.points) of the non-dominated points,
/// in their original order.
[[nodiscard]] std::vector<std::size_t> pareto_front(const SweepResult& sweep);

}  // namespace lzss::est
