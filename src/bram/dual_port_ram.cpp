#include "bram/dual_port_ram.hpp"

namespace lzss::bram {

DualPortRam::DualPortRam(std::string name, std::size_t depth, unsigned width_bits)
    : name_(std::move(name)),
      width_bits_(width_bits),
      mask_(width_bits >= 32 ? 0xFFFFFFFFu : ((1u << width_bits) - 1u)),
      data_(depth, 0) {
  if (depth == 0) throw std::invalid_argument("DualPortRam " + name_ + ": zero depth");
  if (width_bits == 0 || width_bits > 32)
    throw std::invalid_argument("DualPortRam " + name_ + ": width must be 1..32 bits");
}

void DualPortRam::use_port(Port port, bool is_write, std::size_t addr) {
  const auto idx = static_cast<std::size_t>(port);
  if (port_used_[idx]) {
    throw PortConflictError("DualPortRam " + name_ + ": port " + (idx == 0 ? "A" : "B") +
                            " used twice in one cycle");
  }
  if (addr >= data_.size()) {
    throw std::out_of_range("DualPortRam " + name_ + ": address out of range");
  }
  port_used_[idx] = true;
  auto& st = stats_[idx];
  (is_write ? st.writes : st.reads) += 1;
  st.busy_cycles += 1;
}

std::uint32_t DualPortRam::read(Port port, std::size_t addr) {
  use_port(port, /*is_write=*/false, addr);
  return data_[addr];
}

void DualPortRam::write(Port port, std::size_t addr, std::uint32_t value) {
  use_port(port, /*is_write=*/true, addr);
  data_[addr] = value & mask_;
}

std::uint32_t DualPortRam::exchange(Port port, std::size_t addr, std::uint32_t value) {
  use_port(port, /*is_write=*/true, addr);
  const std::uint32_t old = data_[addr];
  data_[addr] = value & mask_;
  return old;
}

void DualPortRam::tick() noexcept {
  port_used_[0] = false;
  port_used_[1] = false;
}

std::uint32_t DualPortRam::peek(std::size_t addr) const {
  if (addr >= data_.size()) throw std::out_of_range("DualPortRam " + name_ + ": peek OOR");
  return data_[addr];
}

void DualPortRam::poke(std::size_t addr, std::uint32_t value) {
  if (addr >= data_.size()) throw std::out_of_range("DualPortRam " + name_ + ": poke OOR");
  data_[addr] = value & mask_;
}

void DualPortRam::reset() {
  std::fill(data_.begin(), data_.end(), 0u);
  stats_[0] = PortStats{};
  stats_[1] = PortStats{};
  port_used_[0] = port_used_[1] = false;
}

}  // namespace lzss::bram
