#include "bram/geometry.hpp"

#include <algorithm>
#include <array>
#include <cstdint>

namespace lzss::bram {
namespace {

struct AspectRatio {
  std::size_t depth;
  unsigned width;
};

// True-dual-port aspect ratios (the x72/x36 SDP-only modes are excluded:
// every memory in the compressor uses both ports independently).
constexpr std::array<AspectRatio, 6> kBram36Ratios{{
    {32768, 1}, {16384, 2}, {8192, 4}, {4096, 9}, {2048, 18}, {1024, 36},
}};
constexpr std::array<AspectRatio, 6> kBram18Ratios{{
    {16384, 1}, {8192, 2}, {4096, 4}, {2048, 9}, {1024, 18}, {512, 36},
}};

template <std::size_t N>
std::size_t best_count(const std::array<AspectRatio, N>& ratios, std::size_t depth,
                       unsigned width_bits) noexcept {
  if (depth == 0 || width_bits == 0) return 0;
  std::size_t best = SIZE_MAX;
  for (const auto& r : ratios) {
    const std::size_t rows = (depth + r.depth - 1) / r.depth;
    const std::size_t cols = (width_bits + r.width - 1) / r.width;
    best = std::min(best, rows * cols);
  }
  return best;
}

}  // namespace

std::size_t bram36_count(std::size_t depth, unsigned width_bits) noexcept {
  return best_count(kBram36Ratios, depth, width_bits);
}

std::size_t bram18_count(std::size_t depth, unsigned width_bits) noexcept {
  return best_count(kBram18Ratios, depth, width_bits);
}

std::size_t natural_split_factor(std::size_t depth, unsigned width_bits) noexcept {
  return std::max<std::size_t>(1, bram18_count(depth, width_bits));
}

}  // namespace lzss::bram
