// Dual-port block-RAM model.
//
// Models the property the paper's whole performance argument rests on: a
// true-dual-port BRAM services one access per port per clock cycle, and the
// two ports are fully independent. The model is functional (reads return the
// stored value immediately — the surrounding FSMs charge the read latency in
// their own cycle accounting, exactly like the authors' cycle-accurate C++
// estimator) but *structurally strict*: using a port twice in one cycle, or
// addressing out of range, is a modelling bug and is reported as such.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace lzss::bram {

enum class Port : std::uint8_t { A = 0, B = 1 };

/// Per-port access counters, exposed for utilization reports and tests.
struct PortStats {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  /// Cycles in which the port performed at least one access.
  std::uint64_t busy_cycles = 0;
};

/// Thrown when a component violates the one-access-per-port-per-cycle rule.
class PortConflictError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// A depth x width_bits dual-port synchronous RAM.
///
/// Values are stored in uint32_t words; width_bits <= 32. Writes are masked
/// to the configured width so stale high bits can never leak between fields
/// that share a memory.
class DualPortRam {
 public:
  DualPortRam(std::string name, std::size_t depth, unsigned width_bits);

  /// Reads one word through @p port in the current cycle.
  [[nodiscard]] std::uint32_t read(Port port, std::size_t addr);

  /// Writes one word through @p port in the current cycle.
  void write(Port port, std::size_t addr, std::uint32_t value);

  /// READ_FIRST write: stores @p value and returns the previous content, as
  /// a single port operation (Virtex-5 write-mode READ_FIRST). This is how
  /// the head table is read and updated in the same clock cycle.
  [[nodiscard]] std::uint32_t exchange(Port port, std::size_t addr, std::uint32_t value);

  /// Advances the clock: re-arms both ports for the next cycle.
  void tick() noexcept;

  /// Debug/testbench backdoor: no port usage, no cycle accounting.
  [[nodiscard]] std::uint32_t peek(std::size_t addr) const;
  void poke(std::size_t addr, std::uint32_t value);

  /// Clears contents to zero and resets statistics.
  void reset();

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] std::size_t depth() const noexcept { return data_.size(); }
  [[nodiscard]] unsigned width_bits() const noexcept { return width_bits_; }
  [[nodiscard]] std::size_t bit_count() const noexcept { return depth() * width_bits_; }
  [[nodiscard]] const PortStats& stats(Port port) const noexcept {
    return stats_[static_cast<std::size_t>(port)];
  }

 private:
  void use_port(Port port, bool is_write, std::size_t addr);

  std::string name_;
  unsigned width_bits_;
  std::uint32_t mask_;
  std::vector<std::uint32_t> data_;
  bool port_used_[2] = {false, false};
  PortStats stats_[2];
};

}  // namespace lzss::bram
