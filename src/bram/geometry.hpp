// Virtex-5 block-RAM primitive geometry and budgeting.
//
// A Virtex-5 RAMB36 holds 36 kbit and supports the aspect ratios
// 32K x 1 ... 1K x 36 (512 x 72 in simple-dual-port mode). Each RAMB36 can
// also be split into two independent 18 kbit RAMB18s. Given a logical memory
// (depth x width) this module computes how many physical primitives the
// synthesizer would infer — the number Table II and the estimator report.
#pragma once

#include <cstddef>

namespace lzss::bram {

/// Capacity of the Virtex-5 primitives, in bits.
inline constexpr std::size_t kBram36Bits = 36 * 1024;
inline constexpr std::size_t kBram18Bits = 18 * 1024;

/// Number of RAMB36 primitives needed for a depth x width_bits memory in
/// true-dual-port mode.
[[nodiscard]] std::size_t bram36_count(std::size_t depth, unsigned width_bits) noexcept;

/// Number of RAMB18 primitives (half-BRAM granularity) for the same memory.
[[nodiscard]] std::size_t bram18_count(std::size_t depth, unsigned width_bits) noexcept;

/// The paper splits the head table into M sub-memories, each the size of a
/// single block RAM, so rotation can proceed in all of them in parallel.
/// Returns that natural split factor M (>= 1): the number of BRAM18
/// primitives the head table occupies.
[[nodiscard]] std::size_t natural_split_factor(std::size_t depth, unsigned width_bits) noexcept;

}  // namespace lzss::bram
