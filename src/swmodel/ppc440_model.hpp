// Timing model of the paper's software baseline: zlib on the PowerPC-440
// hard core inside the XC5VFX70T, clocked at 400 MHz.
//
// We cannot run a PowerPC; instead the software encoder's operation census
// (hash computations, chain probes, compared bytes, emitted tokens — the
// same operations zlib's deflate executes) is priced with per-operation
// cycle costs representative of a PPC440 with 32 KB caches in front of DDR2.
// The costs were calibrated ONCE against the paper's Table I anchor
// (~2.5-3.3 MB/s for zlib level 1 on text) and are frozen; every experiment
// then uses the same frozen model, so relative comparisons remain honest.
#pragma once

#include <cstdint>

#include "lzss/sw_encoder.hpp"

namespace lzss::swm {

struct Ppc440Costs {
  double clock_mhz = 400.0;
  // Per-operation cycle prices (averages including cache effects).
  double per_byte = 70.0;       ///< stream handling, window upkeep, Huffman emit
  double per_hash = 26.0;       ///< INSERT_STRING: hash + head/prev update
  double per_probe = 52.0;      ///< chain walk step: dependent load, likely cache miss
  double per_compare_byte = 7.5;///< match loop byte compare
  double per_token = 44.0;      ///< tally + code emission bookkeeping
};

struct SwTiming {
  double cycles = 0.0;
  double seconds = 0.0;
  double mb_per_s = 0.0;  ///< MB = 10^6 bytes
};

/// Prices one encode run. @p bytes is the input size the stats describe.
[[nodiscard]] SwTiming price(const core::EncodeStats& stats, std::uint64_t bytes,
                             const Ppc440Costs& costs = {});

}  // namespace lzss::swm
