// Trace-driven cache simulator for the PowerPC-440 baseline.
//
// The flat per-operation prices in ppc440_model.hpp bake average cache
// behaviour into constants. This module removes that assumption: it models
// the PPC440's 32 KB, 64-way set-associative, 32-byte-line data cache with
// LRU replacement, driven by the actual memory reference stream of the
// software match finder (head probes, prev-chain walks, window compares).
// The result is a first-principles cycle count that can be cross-checked
// against the calibrated flat model.
#pragma once

#include <cstdint>
#include <list>
#include <span>
#include <unordered_map>
#include <vector>

namespace lzss::swm {

/// Geometry of the PPC440 L1 data cache.
struct CacheGeometry {
  std::uint32_t size_bytes = 32 * 1024;
  std::uint32_t line_bytes = 32;
  std::uint32_t ways = 64;  // the 440's unusual high associativity

  [[nodiscard]] std::uint32_t num_sets() const noexcept {
    return size_bytes / (line_bytes * ways);
  }
};

/// A set-associative LRU cache over 64-bit byte addresses.
class CacheSim {
 public:
  explicit CacheSim(CacheGeometry geometry = {});

  /// Accesses one address; returns true on hit. Loads the line on miss.
  bool access(std::uint64_t address);

  [[nodiscard]] std::uint64_t hits() const noexcept { return hits_; }
  [[nodiscard]] std::uint64_t misses() const noexcept { return misses_; }
  [[nodiscard]] double miss_rate() const noexcept {
    const std::uint64_t total = hits_ + misses_;
    return total == 0 ? 0.0 : static_cast<double>(misses_) / static_cast<double>(total);
  }
  void reset();

 private:
  struct Set {
    // Tags in LRU order, most recent first. With 64 ways a vector scan is
    // fine (moves are rare relative to hits at the front).
    std::vector<std::uint64_t> tags;
  };

  CacheGeometry geo_;
  std::uint32_t set_mask_;
  unsigned line_shift_;
  std::vector<Set> sets_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

/// The memory reference stream of one software-encoder run, reconstructed
/// from the algorithm structure (see trace_encode in cache_model.cpp).
struct MemoryTraceStats {
  std::uint64_t accesses = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  double miss_rate = 0.0;
};

/// Cycle estimate from the trace-driven model.
struct CacheTimedResult {
  MemoryTraceStats trace;
  double cycles = 0.0;
  double mb_per_s = 0.0;  ///< at the PPC440's 400 MHz
};

/// Cost parameters around the cache.
struct CacheCostParams {
  double clock_mhz = 400.0;
  double hit_cycles = 1.0;
  double miss_cycles = 58.0;  ///< DDR2 round trip at 400 MHz, PLB arbitration
  /// Non-memory instruction work. zlib's per-byte path (hash update, loop
  /// control, Huffman bit emission through a byte-oriented buffer) costs on
  /// the order of a hundred instructions on an in-order 440 — this, not the
  /// cache, dominates, which the trace-driven model makes visible.
  double core_cycles_per_byte = 90.0;
  double core_cycles_per_token = 120.0;
};

/// Runs the software match finder over @p data while simulating its memory
/// reference stream; returns the first-principles timing.
[[nodiscard]] CacheTimedResult cache_timed_encode(std::span<const std::uint8_t> data,
                                                  unsigned window_bits, unsigned hash_bits,
                                                  int level, CacheCostParams params = {});

}  // namespace lzss::swm
