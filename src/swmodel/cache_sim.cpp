#include "swmodel/cache_sim.hpp"

#include <algorithm>
#include <stdexcept>

#include "lzss/sw_encoder.hpp"

namespace lzss::swm {

CacheSim::CacheSim(CacheGeometry geometry) : geo_(geometry) {
  const std::uint32_t sets = geo_.num_sets();
  if (sets == 0 || (sets & (sets - 1)) != 0)
    throw std::invalid_argument("CacheSim: set count must be a power of two >= 1");
  if ((geo_.line_bytes & (geo_.line_bytes - 1)) != 0)
    throw std::invalid_argument("CacheSim: line size must be a power of two");
  set_mask_ = sets - 1;
  line_shift_ = 0;
  while ((1u << line_shift_) < geo_.line_bytes) ++line_shift_;
  sets_.resize(sets);
  for (auto& s : sets_) s.tags.reserve(geo_.ways);
}

bool CacheSim::access(std::uint64_t address) {
  const std::uint64_t line = address >> line_shift_;
  Set& set = sets_[line & set_mask_];
  auto& tags = set.tags;

  const auto it = std::find(tags.begin(), tags.end(), line);
  if (it != tags.end()) {
    // LRU touch: rotate the hit tag to the front.
    std::rotate(tags.begin(), it, it + 1);
    ++hits_;
    return true;
  }
  ++misses_;
  if (tags.size() == geo_.ways) tags.pop_back();  // evict LRU
  tags.insert(tags.begin(), line);
  return false;
}

void CacheSim::reset() {
  for (auto& s : sets_) s.tags.clear();
  hits_ = 0;
  misses_ = 0;
}

namespace {

/// Maps the encoder's (region, index) references onto a flat PPC address
/// space with zlib's element sizes (window bytes, 2-byte Pos entries) and
/// feeds them to the cache.
class TraceAdapter final : public core::AccessObserver {
 public:
  explicit TraceAdapter(CacheSim& cache, unsigned window_bits, unsigned hash_bits)
      : cache_(&cache),
        head_base_(0x1000'0000),
        prev_base_(head_base_ + (std::uint64_t{2} << hash_bits)),
        window_base_(prev_base_ + (std::uint64_t{2} << window_bits)) {}

  void on_access(core::MemRegion region, std::uint64_t index) override {
    std::uint64_t addr = 0;
    switch (region) {
      case core::MemRegion::kWindow:
        addr = window_base_ + index;
        break;
      case core::MemRegion::kHead:
        addr = head_base_ + 2 * index;
        break;
      case core::MemRegion::kPrev:
        addr = prev_base_ + 2 * index;
        break;
    }
    ++accesses_;
    (void)cache_->access(addr);
  }

  [[nodiscard]] std::uint64_t accesses() const noexcept { return accesses_; }

 private:
  CacheSim* cache_;
  std::uint64_t head_base_, prev_base_, window_base_;
  std::uint64_t accesses_ = 0;
};

}  // namespace

CacheTimedResult cache_timed_encode(std::span<const std::uint8_t> data, unsigned window_bits,
                                    unsigned hash_bits, int level, CacheCostParams params) {
  core::MatchParams mp;
  mp.window_bits = window_bits;
  mp.hash.bits = hash_bits;
  mp = mp.with_level(level);

  CacheSim cache;
  TraceAdapter adapter(cache, window_bits, hash_bits);
  core::SoftwareEncoder enc(mp);
  enc.set_access_observer(&adapter);
  const auto tokens = enc.encode(data);
  enc.set_access_observer(nullptr);

  CacheTimedResult r;
  r.trace.accesses = adapter.accesses();
  r.trace.hits = cache.hits();
  r.trace.misses = cache.misses();
  r.trace.miss_rate = cache.miss_rate();
  r.cycles = params.hit_cycles * static_cast<double>(cache.hits()) +
             params.miss_cycles * static_cast<double>(cache.misses()) +
             params.core_cycles_per_byte * static_cast<double>(data.size()) +
             params.core_cycles_per_token * static_cast<double>(tokens.size());
  const double seconds = r.cycles / (params.clock_mhz * 1e6);
  r.mb_per_s = seconds == 0.0 ? 0.0 : static_cast<double>(data.size()) / 1e6 / seconds;
  return r;
}

}  // namespace lzss::swm
