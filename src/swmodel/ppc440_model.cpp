#include "swmodel/ppc440_model.hpp"

namespace lzss::swm {

SwTiming price(const core::EncodeStats& stats, std::uint64_t bytes, const Ppc440Costs& c) {
  SwTiming t;
  t.cycles = c.per_byte * static_cast<double>(bytes) +
             c.per_hash * static_cast<double>(stats.hash_computations) +
             c.per_probe * static_cast<double>(stats.chain_probes) +
             c.per_compare_byte * static_cast<double>(stats.compare_bytes) +
             c.per_token * static_cast<double>(stats.tokens());
  t.seconds = t.cycles / (c.clock_mhz * 1e6);
  t.mb_per_s = t.seconds == 0.0 ? 0.0 : static_cast<double>(bytes) / 1e6 / t.seconds;
  return t;
}

}  // namespace lzss::swm
