#include "hw/compressor.hpp"

#include <algorithm>
#include <stdexcept>

namespace lzss::hw {

using bram::Port;

Compressor::Compressor(HwConfig config) : cfg_(config) {
  cfg_.validate();
  n_ = cfg_.dict_size();
  n_mask_ = n_ - 1;
  la_mask_ = cfg_.lookahead_bytes - 1;
  pos_mask_ = cfg_.position_modulus() - 1;
  max_dist_ = cfg_.max_distance();
  fill_ahead_ = cfg_.fill_ahead();

  lookahead_ = std::make_unique<bram::DualPortRam>("lookahead", cfg_.lookahead_bytes / 4, 32);
  dict_ = std::make_unique<bram::DualPortRam>("dictionary", n_ / 4, 32);
  hash_cache_ =
      std::make_unique<bram::DualPortRam>("hash_cache", cfg_.lookahead_bytes, cfg_.hash.bits);
  head_ = std::make_unique<bram::DualPortRam>("head", cfg_.hash.table_size(),
                                              cfg_.position_bits());
  next_ = std::make_unique<bram::DualPortRam>("next", n_, cfg_.dict_bits);

  la_ring_.assign(cfg_.lookahead_bytes, 0);
  dict_ring_.assign(n_, 0);
  hash_shadow_.assign(cfg_.lookahead_bytes, 0);
  reset();
}

void Compressor::reset() {
  lookahead_->reset();
  dict_->reset();
  hash_cache_->reset();
  head_->reset();
  next_->reset();
  std::fill(la_ring_.begin(), la_ring_.end(), 0);
  std::fill(dict_ring_.begin(), dict_ring_.end(), 0);
  std::fill(hash_shadow_.begin(), hash_shadow_.end(), 0);
  in_ = {};
  fill_pos_ = 0;
  pos_ = 0;
  state_ = State::kWaitData;
  prefetch_valid_ = false;
  best_len_ = best_dist_ = 0;
  chain_left_ = 0;
  succ_valid_ = false;
  ins_pos_ = ins_end_ = 0;
  next_rotation_ = cfg_.rotation_interval();
  rotate_left_ = 0;
  tokens_.clear();
  stats_ = CycleStats{};
}

void Compressor::set_input(std::span<const std::uint8_t> input) {
  in_ = input;
  stats_.bytes_in = input.size();
  if (input.empty()) state_ = State::kDone;
}

CompressResult Compressor::compress(std::span<const std::uint8_t> input) {
  reset();
  set_input(input);
  // Generous runaway guard: even a 1-byte bus with a deep chain stays far
  // below this; exceeding it means the model wedged.
  const std::uint64_t guard =
      static_cast<std::uint64_t>(input.size()) * (cfg_.max_chain + 8) * 8 + 1'000'000;
  while (!done()) {
    step();
    if (stats_.total_cycles > guard)
      throw std::runtime_error("hw::Compressor: cycle guard exceeded (model wedged)");
  }
  return {tokens_, stats_};
}

CompressResult Compressor::compress_words(std::span<const std::uint32_t> words,
                                          std::size_t byte_count, stream::ByteOrder order) {
  if (byte_count > words.size() * 4)
    throw std::invalid_argument("compress_words: byte_count exceeds the word payload");
  word_input_ = stream::unpack_words(words, byte_count, order);
  // reset() inside compress() clears in_ but must not free word_input_;
  // compress() re-points in_ at it afterwards.
  auto result = compress(word_input_);
  return result;
}

void Compressor::emit(const core::Token& t) {
  if (out_channel_ != nullptr) {
    out_channel_->push(t);
  } else {
    tokens_.push_back(t);
  }
}

void Compressor::filler_step() {
  if (fill_pos_ >= in_.size()) return;
  const std::uint64_t limit = pos_ + fill_ahead_;
  if (fill_pos_ >= limit) return;

  // One 32-bit beat per cycle, bounded by the word boundary, the remaining
  // input and the fill-ahead window.
  const std::uint64_t n = std::min({std::uint64_t{4} - (fill_pos_ & 3),
                                    in_.size() - fill_pos_, limit - fill_pos_});
  for (std::uint64_t i = 0; i < n; ++i) {
    const std::uint64_t p = fill_pos_ + i;
    const std::uint8_t b = in_[p];
    la_ring_[p & la_mask_] = b;
    dict_ring_[p & n_mask_] = b;
    // The 3-byte hash of position p-2 is complete once byte p arrives. In
    // hardware several hash-cache entries share one wide BRAM word, so the
    // cache keeps up with the 4-bytes/cycle fill; modelled as a backdoor
    // write here.
    if (p >= 2) {
      const std::uint64_t hp = p - 2;
      hash_shadow_[hp & la_mask_] =
          cfg_.hash.hash3(in_[hp], in_[hp + 1], in_[hp + 2]);
      hash_cache_->poke(hp & la_mask_, hash_shadow_[hp & la_mask_]);
    }
  }
  // The beat itself: one port-B write on each ring.
  std::uint32_t word = 0;
  const std::uint64_t word_base = fill_pos_ & ~std::uint64_t{3};
  for (unsigned lane = 0; lane < 4; ++lane) {
    word |= static_cast<std::uint32_t>(la_ring_[(word_base + lane) & la_mask_]) << (8 * lane);
  }
  lookahead_->write(Port::B, (fill_pos_ & la_mask_) / 4, word);
  dict_->write(Port::B, (fill_pos_ & n_mask_) / 4, word);
  fill_pos_ += n;
}

void Compressor::chain_insert(std::uint64_t p, std::uint32_t h) {
  const std::uint32_t old =
      head_->exchange(Port::A, h, static_cast<std::uint32_t>(p & pos_mask_));
  const std::uint64_t age = entry_age(p, old);
  const std::uint32_t rel = (age >= 1 && age < n_) ? static_cast<std::uint32_t>(age) : 0;
  next_->write(Port::B, p & n_mask_, rel);
}

void Compressor::begin_candidate(std::uint64_t cand_abs) {
  cand_ = cand_abs;
  cand_len_ = 0;
  cand_max_ = static_cast<std::uint32_t>(
      std::min<std::uint64_t>(core::kMaxMatch, occupancy()));
  cand_first_cycle_ = true;
  succ_valid_ = false;
  ++stats_.chain_probes;
}

void Compressor::start_rotation() {
  rotate_left_ = cfg_.rotation_pass_cycles();
  ++stats_.rotation_passes;
  purge_head();
  next_rotation_ += cfg_.rotation_interval();
  ins_pos_ = ins_end_ = 0;  // pending short-match insertions are dropped
  state_ = State::kRotate;
}

void Compressor::purge_head() {
  // Functional effect of the rotation pass: every head entry whose age
  // exceeds the usable window is zeroed, so no entry can survive long enough
  // to alias as fresh in the 2^(dict_bits+G) position space.
  for (std::size_t i = 0; i < head_->depth(); ++i) {
    const std::uint32_t e = head_->peek(i);
    if (e != 0 && entry_age(pos_, e) > max_dist_) head_->poke(i, 0);
  }
}

void Compressor::enter_prep_or_wait_after_advance(std::uint32_t advance) {
  if (pos_ >= in_.size()) {
    state_ = State::kDone;
    return;
  }
  if (pos_ >= next_rotation_) {
    start_rotation();
    return;
  }
  if (ins_pos_ < ins_end_) {
    state_ = State::kHashUpdate;
    return;
  }
  // Hash prefetch: after a 1-byte advance the prefetched hash for the new
  // front is already on the head-table address bus; skip WaitData.
  if (advance == 1 && cfg_.hash_prefetch && fill_pos_ >= pos_ + 3 &&
      occupancy() >= wait_threshold()) {
    prefetch_valid_ = true;
    ++stats_.prefetch_hits;
    state_ = State::kMatchPrep;
    return;
  }
  prefetch_valid_ = false;
  state_ = State::kWaitData;
}

void Compressor::fsm_step() {
  switch (state_) {
    case State::kWaitData: {
      if (pos_ >= in_.size()) {
        state_ = State::kDone;
        return;
      }
      const bool hash_ready = fill_pos_ >= pos_ + 3 || fill_pos_ >= in_.size();
      if (occupancy() >= wait_threshold() && hash_ready) {
        ++stats_.waiting;
        state_ = State::kMatchPrep;
      } else if (fill_pos_ < in_.size()) {
        ++stats_.fetching;  // background filler has not caught up yet
      } else {
        ++stats_.waiting;
      }
      return;
    }

    case State::kMatchPrep: {
      ++stats_.matching;
      best_len_ = 0;
      best_dist_ = 0;
      if (occupancy() < core::kMinMatch) {
        // Tail of the stream: no 3-byte hash, plain literal path.
        prefetch_valid_ = false;
        state_ = State::kOutput;
        return;
      }
      if (!prefetch_valid_) (void)hash_cache_->read(Port::A, pos_ & la_mask_);
      cur_hash_ = hash_at(pos_);
      prefetch_valid_ = false;

      const std::uint32_t head_old =
          head_->exchange(Port::A, cur_hash_, static_cast<std::uint32_t>(pos_ & pos_mask_));
      const std::uint64_t age = entry_age(pos_, head_old);
      const std::uint32_t rel = (age >= 1 && age < n_) ? static_cast<std::uint32_t>(age) : 0;
      next_->write(Port::B, pos_ & n_mask_, rel);

      if (age >= 1 && age <= max_dist_) {
        chain_left_ = cfg_.max_chain;
        begin_candidate(pos_ - age);
        state_ = State::kMatching;
      } else {
        state_ = State::kOutput;
      }
      return;
    }

    case State::kMatching: {
      ++stats_.matching;
      std::uint32_t chunk;
      if (cand_first_cycle_) {
        // Overlapped next-table read: fetch the successor candidate while
        // the first comparer iteration runs.
        const std::uint32_t rel =
            static_cast<std::uint32_t>(next_->read(Port::A, cand_ & n_mask_));
        succ_valid_ = false;
        if (rel != 0) {
          const std::uint64_t prev = cand_ - rel;
          if (pos_ - prev <= max_dist_) {
            succ_ = prev;
            succ_valid_ = true;
          }
        }
        // First iteration is limited by the dictionary word alignment.
        chunk = cfg_.bus_width_bytes == 1
                    ? 1
                    : cfg_.bus_width_bytes -
                          static_cast<std::uint32_t>(cand_ % cfg_.bus_width_bytes);
        cand_first_cycle_ = false;
      } else {
        chunk = cfg_.bus_width_bytes;
      }
      (void)dict_->read(Port::A, ((cand_ + cand_len_) & n_mask_) / 4);
      (void)lookahead_->read(Port::A, ((pos_ + cand_len_) & la_mask_) / 4);

      bool mismatch = false;
      for (std::uint32_t i = 0; i < chunk && cand_len_ < cand_max_; ++i) {
        ++stats_.compare_bytes;
        if (dict_ring_[(cand_ + cand_len_) & n_mask_] != la_ring_[(pos_ + cand_len_) & la_mask_]) {
          mismatch = true;
          break;
        }
        ++cand_len_;
      }

      if (mismatch || cand_len_ >= cand_max_) {
        if (cand_len_ >= core::kMinMatch && cand_len_ > best_len_) {
          best_len_ = cand_len_;
          best_dist_ = static_cast<std::uint32_t>(pos_ - cand_);
        }
        --chain_left_;
        if (best_len_ >= cfg_.nice_length || chain_left_ == 0 || !succ_valid_) {
          state_ = State::kOutput;
        } else {
          begin_candidate(succ_);
        }
      }
      return;
    }

    case State::kOutput: {
      if (out_channel_ != nullptr && !out_channel_->can_push()) {
        ++stats_.output;
        ++stats_.output_stall_cycles;  // sink requested a delay; FSM stalls
        return;
      }
      ++stats_.output;
      std::uint32_t advance;
      if (best_len_ >= core::kMinMatch) {
        emit(core::Token::match(best_dist_, best_len_));
        ++stats_.matches;
        stats_.match_bytes += best_len_;
        advance = best_len_;
        if (best_len_ <= cfg_.max_insert) {
          ins_pos_ = pos_ + 1;
          ins_end_ = pos_ + best_len_;
        } else {
          ins_pos_ = ins_end_ = 0;
        }
      } else {
        emit(core::Token::literal(stream_byte(pos_)));
        ++stats_.literals;
        advance = 1;
        ins_pos_ = ins_end_ = 0;
      }
      pos_ += advance;
      enter_prep_or_wait_after_advance(advance);
      return;
    }

    case State::kHashUpdate: {
      ++stats_.updating;
      const std::uint64_t k = ins_pos_++;
      if (k + core::kMinMatch <= in_.size() && k + core::kMinMatch <= fill_pos_) {
        (void)hash_cache_->read(Port::A, k & la_mask_);
        const std::uint32_t h =
            cfg_.hash.hash3(dict_ring_[k & n_mask_], dict_ring_[(k + 1) & n_mask_],
                            dict_ring_[(k + 2) & n_mask_]);
        chain_insert(k, h);
      }
      if (ins_pos_ >= ins_end_) {
        prefetch_valid_ = false;
        state_ = State::kWaitData;
      }
      return;
    }

    case State::kRotate: {
      ++stats_.rotating;
      if (--rotate_left_ == 0) {
        prefetch_valid_ = false;
        state_ = State::kWaitData;
      }
      return;
    }

    case State::kDone:
      return;
  }
}

void Compressor::tick_memories() {
  lookahead_->tick();
  dict_->tick();
  hash_cache_->tick();
  head_->tick();
  next_->tick();
}

Compressor::DebugView Compressor::debug_view() const noexcept {
  static constexpr const char* kNames[] = {"WaitData", "MatchPrep", "Matching", "Output",
                                           "HashUpdate", "Rotate", "Done"};
  const auto code = static_cast<unsigned>(state_);
  return DebugView{kNames[code], code,       pos_,     fill_pos_,
                   occupancy(),  best_len_,  chain_left_, cand_len_};
}

void Compressor::step() {
  if (state_ == State::kDone) return;
  filler_step();
  fsm_step();
  tick_memories();
  ++stats_.total_cycles;
}

}  // namespace lzss::hw
