// Full-system model of the paper's ML507 testbench.
//
// "We have developed a testbench that receives a data block from the PC over
// Ethernet, stores it in the DDR2 memory, compresses it and sends the result
// back. The compression time includes the DMA setup times, but excludes
// Ethernet transmission time."
//
// run_system wires DRAM -> DMA -> compressor -> fixed Huffman stage -> DMA
// -> DRAM, steps everything on a common clock, and reports the measured
// time the same way Table I does (DMA setup included).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "hw/compressor.hpp"
#include "hw/config.hpp"
#include "hw/decompressor.hpp"
#include "stream/dma.hpp"

namespace lzss::hw {

struct SystemReport {
  CycleStats compressor;             ///< per-state census of the LZSS unit
  std::uint64_t total_cycles = 0;    ///< DMA setup + compression + drain
  std::uint64_t dma_setup_cycles = 0;
  std::uint64_t huffman_stall_cycles = 0;
  std::size_t input_bytes = 0;
  std::size_t deflate_bytes = 0;     ///< raw Deflate payload size
  std::vector<std::uint8_t> deflate_stream;  ///< the produced payload

  /// Throughput including DMA setup, as Table I measures it (MB = 10^6 B).
  [[nodiscard]] double mb_per_s(double clock_mhz) const noexcept {
    return total_cycles == 0 ? 0.0
                             : static_cast<double>(input_bytes) * clock_mhz /
                                   static_cast<double>(total_cycles);
  }
  /// Compression ratio (uncompressed / zlib-container size).
  [[nodiscard]] double ratio() const noexcept {
    const double out = static_cast<double>(deflate_bytes) + 6.0;  // zlib header + Adler-32
    return out == 0.0 ? 0.0 : static_cast<double>(input_bytes) / out;
  }
};

/// Runs one block through the full pipeline.
[[nodiscard]] SystemReport run_system(const HwConfig& config, std::span<const std::uint8_t> input,
                                      stream::DmaTimings dma = {});

/// Decompression-side system report (DRAM -> DMA -> fixed-Huffman decode
/// stage -> LZSS decompressor).
struct DecodeSystemReport {
  DecompressStats decompressor;
  std::uint64_t total_cycles = 0;
  std::uint64_t decode_refill_cycles = 0;
  std::vector<std::uint8_t> data;

  [[nodiscard]] double mb_per_s(double clock_mhz) const noexcept {
    return total_cycles == 0 ? 0.0
                             : static_cast<double>(data.size()) * clock_mhz /
                                   static_cast<double>(total_cycles);
  }
};

/// Runs a single-block fixed-Huffman Deflate stream (as produced by
/// run_system) through the decode pipeline.
[[nodiscard]] DecodeSystemReport run_decode_system(const DecompressorConfig& config,
                                                   std::span<const std::uint8_t> deflate_stream,
                                                   stream::DmaTimings dma = {});

}  // namespace lzss::hw
