#include "hw/config.hpp"

#include <stdexcept>

#include "bram/geometry.hpp"
#include "lzss/params.hpp"

namespace lzss::hw {

std::size_t HwConfig::head_split_factor() const {
  if (head_split != 0) return head_split;
  return bram::natural_split_factor(hash.table_size(), position_bits());
}

std::uint64_t HwConfig::rotation_pass_cycles() const {
  const std::size_t m = head_split_factor();
  std::uint64_t cycles = (hash.table_size() + m - 1) / m;
  if (!relative_next) {
    // Absolute next-table offsets must be adjusted too (zlib-style); the
    // next table is its own set of BRAMs, scanned in parallel with the head.
    const std::size_t mn = bram::natural_split_factor(dict_size(), position_bits());
    cycles = std::max<std::uint64_t>(cycles, (dict_size() + mn - 1) / mn);
  }
  return cycles;
}

HwConfig HwConfig::with_level(int level) const {
  // Reuse the zlib configuration table via MatchParams.
  core::MatchParams mp;
  mp = mp.with_level(level);
  HwConfig c = *this;
  c.max_chain = mp.max_chain;
  c.nice_length = mp.nice_length;
  c.max_insert = mp.max_lazy;  // in fast mode this is zlib's max_insert_length
  return c;
}

HwConfig HwConfig::speed_optimized() {
  HwConfig c;
  c.dict_bits = 12;
  c.hash.bits = 15;
  return c.with_level(1);
}

void HwConfig::validate() const {
  if (dict_bits < 9 || dict_bits > 16)
    throw std::invalid_argument("HwConfig: dict_bits must be 9..16");
  if (hash.bits < 6 || hash.bits > 18)
    throw std::invalid_argument("HwConfig: hash bits must be 6..18");
  if (generation_bits > 8) throw std::invalid_argument("HwConfig: generation_bits must be <= 8");
  if (position_bits() > 24)
    throw std::invalid_argument("HwConfig: dict_bits + generation_bits must be <= 24");
  if (bus_width_bytes != 1 && bus_width_bytes != 2 && bus_width_bytes != 4)
    throw std::invalid_argument("HwConfig: bus width must be 1, 2 or 4 bytes");
  if (lookahead_bytes < 262 || (lookahead_bytes & (lookahead_bytes - 1)) != 0)
    throw std::invalid_argument("HwConfig: lookahead must be a power of two >= 262");
  if (lookahead_bytes >= dict_size())
    throw std::invalid_argument("HwConfig: lookahead must be smaller than the dictionary");
  if (max_chain == 0) throw std::invalid_argument("HwConfig: max_chain must be >= 1");
}

std::string HwConfig::describe() const {
  return "dict=" + std::to_string(dict_size()) + "B hash=" + std::to_string(hash.bits) +
         "b gen=" + std::to_string(generation_bits) + " M=" +
         std::to_string(head_split_factor()) + " bus=" + std::to_string(bus_width_bytes) +
         "B chain=" + std::to_string(max_chain) + (hash_prefetch ? " prefetch" : "") +
         (relative_next ? " rel-next" : " abs-next");
}

}  // namespace lzss::hw
