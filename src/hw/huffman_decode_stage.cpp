#include "hw/huffman_decode_stage.hpp"

#include <stdexcept>

#include "deflate/fixed_tables.hpp"

namespace lzss::hw {
namespace {

// Maximum bits one decode step can consume: a distance symbol (5) plus its
// extra bits (13), or a literal/length symbol (9) plus length extra (5).
constexpr unsigned kMaxStepBits = 18;

}  // namespace

std::uint32_t HuffmanDecodeStage::take(unsigned n) {
  if (nbits_ < n) throw std::runtime_error("HuffmanDecodeStage: truncated fixed-Huffman block");
  const std::uint32_t v = static_cast<std::uint32_t>(acc_ & ((1ull << n) - 1));
  acc_ >>= n;
  nbits_ -= n;
  return v;
}

unsigned HuffmanDecodeStage::decode_symbol(bool distance) {
  // Fixed codes only: peel bits MSB-of-code-first and look the value up in
  // the canonical assignment (lengths 5 for distances, 7/8/9 for lit/len).
  // Hardware resolves this with one parallel LUT; a linear scan is fine in
  // the model because the bands are contiguous.
  if (distance) {
    std::uint32_t v = 0;
    for (unsigned i = 0; i < 5; ++i) v = (v << 1) | take(1);
    return v;  // canonical 5-bit code == symbol
  }
  // Literal/length: 7-bit codes 0..23 (symbols 256..279), 8-bit codes
  // 0x30..0xBF (0..143) and 0xC0..0xC7 (280..287), 9-bit 0x190..0x1FF
  // (144..255) — RFC 1951 section 3.2.6.
  std::uint32_t v = 0;
  for (unsigned i = 0; i < 7; ++i) v = (v << 1) | take(1);
  if (v <= 0b0010111) return 256 + v;
  v = (v << 1) | take(1);
  if (v >= 0x30 && v <= 0xBF) return v - 0x30;
  if (v >= 0xC0 && v <= 0xC7) return 280 + (v - 0xC0);
  v = (v << 1) | take(1);
  if (v >= 0x190 && v <= 0x1FF) return 144 + (v - 0x190);
  throw std::runtime_error("HuffmanDecodeStage: invalid fixed code");
}

void HuffmanDecodeStage::tick() {
  if (finished_) return;

  // Refill: one 32-bit word per cycle through the input port.
  if (nbits_ <= 32 && in_->can_pop()) {
    acc_ |= static_cast<std::uint64_t>(in_->pop()) << nbits_;
    nbits_ += 32;
  }
  // Wait for more bits when a worst-case step does not fit and the stream
  // has not ended (a slow producer must never cause a bogus decode).
  if (!have(kMaxStepBits) && !(in_done_ && in_->empty())) {
    ++refills_;
    return;
  }
  if (!out_->can_push()) {
    ++stalls_;
    return;
  }

  if (!header_parsed_) {
    (void)take(1);  // BFINAL (single-block streams only)
    const std::uint32_t btype = take(2);
    if (btype != 0b01)
      throw std::runtime_error("HuffmanDecodeStage: not a fixed-Huffman block");
    header_parsed_ = true;
    return;  // header cycle
  }

  if (pending_match_) {
    const unsigned dsym = decode_symbol(/*distance=*/true);
    if (dsym > 29) throw std::runtime_error("HuffmanDecodeStage: bad distance symbol");
    const std::uint32_t dist =
        deflate::distance_base(dsym) + take(deflate::distance_extra_bits(dsym));
    out_->push(core::Token::match(dist, pending_length_));
    ++tokens_;
    pending_match_ = false;
    return;
  }

  const unsigned sym = decode_symbol(/*distance=*/false);
  if (sym < 256) {
    out_->push(core::Token::literal(static_cast<std::uint8_t>(sym)));
    ++tokens_;
    return;
  }
  if (sym == deflate::kEndOfBlock) {
    finished_ = true;
    return;
  }
  if (sym > 285) throw std::runtime_error("HuffmanDecodeStage: bad length symbol");
  pending_length_ = deflate::length_base(sym) + take(deflate::length_extra_bits(sym));
  pending_match_ = true;  // distance decodes next cycle
}

}  // namespace lzss::hw
