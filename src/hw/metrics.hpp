// Re-exports the hardware model's per-FSM-state cycle census (hw/cycle_stats
// .hpp — the paper's fig. 5 categories) into an obs::Registry, so the service
// view of "where did the cycles go" lines up with the paper's evaluation.
//
// The per-state counters hw_state_cycles_total{state=...} sum exactly to
// hw_cycles_total, the same invariant CycleStats itself maintains.
#pragma once

#include "hw/cycle_stats.hpp"
#include "obs/metrics.hpp"

namespace lzss::hw {

/// Accumulates one compression run's census into @p registry. Call once per
/// CompressResult; counters only ever grow.
void export_cycle_stats(obs::Registry& registry, const CycleStats& stats);

}  // namespace lzss::hw
