// Compile-time generics and run-time parameters of the hardware compressor.
//
// Mirrors the paper's customization points: "Dictionary size, hash bit
// count, exact hash function, generation bit count, and the head table
// division factor can be customized during compile-time. Run-time parameters
// (e.g. matching iteration limit) can also be changed."
#pragma once

#include <cstdint>
#include <string>

#include "lzss/hash.hpp"

namespace lzss::hw {

struct HwConfig {
  // --- compile-time generics -------------------------------------------
  unsigned dict_bits = 12;            ///< dictionary (sliding window) = 2^dict_bits bytes
  core::HashSpec hash{.bits = 15};    ///< hash table spec
  unsigned generation_bits = 4;       ///< k extra bits per head entry (rotation 2^k x rarer)
  unsigned head_split = 0;            ///< M sub-memories for parallel rotation; 0 = natural
  unsigned bus_width_bytes = 4;       ///< comparer data-bus width; 1 reproduces [11]
  unsigned lookahead_bytes = 512;     ///< lookahead ring buffer size
  bool hash_prefetch = true;          ///< prefetch the hash at offset 1 during matching
  bool relative_next = true;          ///< relative next-table offsets (no next rotation)

  // --- run-time parameters ---------------------------------------------
  std::uint32_t max_chain = 4;        ///< matching iteration limit (hash chain bound)
  std::uint32_t nice_length = 8;      ///< stop the chain when a match this long is found
  std::uint32_t max_insert = 4;       ///< full hash update only for matches up to this length

  double clock_mhz = 100.0;           ///< compressor clock (ML507 design: 100 MHz)

  // --- derived values ----------------------------------------------------
  [[nodiscard]] std::uint32_t dict_size() const noexcept { return 1u << dict_bits; }
  /// Positions are stored modulo 2^(dict_bits + generation_bits) — "as if the
  /// dictionary was 2^k times bigger".
  [[nodiscard]] unsigned position_bits() const noexcept { return dict_bits + generation_bits; }
  [[nodiscard]] std::uint64_t position_modulus() const noexcept {
    return std::uint64_t{1} << position_bits();
  }
  /// How far ahead of the current position the filler may run. Bounded by
  /// the lookahead buffer; throttled to zlib's MIN_LOOKAHEAD (262) for small
  /// windows so the fill-ahead region does not eat the dictionary.
  [[nodiscard]] std::uint32_t fill_ahead() const noexcept {
    return dict_size() > 2 * lookahead_bytes ? lookahead_bytes : 262;
  }
  /// Largest usable match distance: dictionary slots inside the fill-ahead
  /// region already hold future data and must not be referenced.
  [[nodiscard]] std::uint32_t max_distance() const noexcept {
    return dict_size() - fill_ahead();
  }
  /// Bytes between head-table purge passes: with k generation bits an entry
  /// can only alias as fresh after 2^k * N bytes, so purging every
  /// (2^k - 1) * N bytes is sufficient (every N bytes when k <= 1).
  [[nodiscard]] std::uint64_t rotation_interval() const noexcept {
    const std::uint64_t n = dict_size();
    return generation_bits <= 1 ? n : ((std::uint64_t{1} << generation_bits) - 1) * n;
  }
  /// The head-table division factor M actually in effect.
  [[nodiscard]] std::size_t head_split_factor() const;
  /// Cycles one rotation pass blocks the main FSM for.
  [[nodiscard]] std::uint64_t rotation_pass_cycles() const;

  /// Applies the chain/nice/insert knobs of zlib level 1..9 (the hardware is
  /// always greedy; the level only changes the matching effort).
  [[nodiscard]] HwConfig with_level(int level) const;

  /// The configuration evaluated in Table I: 4 KB dictionary, 15-bit hash,
  /// parameters optimized for speed.
  [[nodiscard]] static HwConfig speed_optimized();

  /// Throws std::invalid_argument when inconsistent.
  void validate() const;

  [[nodiscard]] std::string describe() const;
};

}  // namespace lzss::hw
