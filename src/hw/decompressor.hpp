// Cycle-accurate model of an LZSS decompressor unit.
//
// The compression paper's reference [10] (Huebner et al.) motivates fast
// hardware LZSS *decompression* for dynamic FPGA self-reconfiguration; a
// logger built from this repository also needs the decode side to read its
// own archives. The unit mirrors the compressor's memory discipline: the
// sliding window lives in one dual-port BRAM whose port B writes produced
// bytes while port A reads match sources, so a match copies up to
// min(4, distance) bytes per clock over the same 32-bit buses the
// compressor uses. Literals cost one cycle each.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "bram/dual_port_ram.hpp"
#include "lzss/token.hpp"
#include "stream/channel.hpp"

namespace lzss::hw {

struct DecompressorConfig {
  unsigned window_bits = 12;      ///< must cover every distance in the stream
  unsigned bus_width_bytes = 4;   ///< window data-bus width
  double clock_mhz = 100.0;

  [[nodiscard]] std::uint32_t window_size() const noexcept { return 1u << window_bits; }
  void validate() const;
};

struct DecompressStats {
  std::uint64_t total_cycles = 0;
  std::uint64_t literal_cycles = 0;
  std::uint64_t copy_cycles = 0;
  std::uint64_t idle_cycles = 0;   ///< waiting for input tokens
  std::uint64_t stall_cycles = 0;  ///< output backpressure
  std::uint64_t bytes_out = 0;
  std::uint64_t literals = 0;
  std::uint64_t matches = 0;

  [[nodiscard]] double cycles_per_byte() const noexcept {
    return bytes_out == 0 ? 0.0
                          : static_cast<double>(total_cycles) / static_cast<double>(bytes_out);
  }
  [[nodiscard]] double mb_per_s(double clock_mhz) const noexcept {
    return total_cycles == 0 ? 0.0
                             : static_cast<double>(bytes_out) * clock_mhz /
                                   static_cast<double>(total_cycles);
  }
};

struct DecompressResult {
  std::vector<std::uint8_t> data;
  DecompressStats stats;
};

class Decompressor {
 public:
  explicit Decompressor(DecompressorConfig config);

  /// One-shot: decodes a complete token stream. Throws core::DecodeError on
  /// malformed input (distance beyond history or window).
  [[nodiscard]] DecompressResult decompress(std::span<const core::Token> tokens);

  // --- streaming interface ------------------------------------------------
  void reset();
  /// Tokens arrive through @p channel; end of stream is signalled via
  /// set_input_done().
  void set_input_channel(stream::Channel<core::Token>* channel) { in_ = channel; }
  void set_input_done() noexcept { in_done_ = true; }
  /// Produced bytes are appended to the internal buffer (take with result()).
  void step();
  [[nodiscard]] bool done() const noexcept;

  [[nodiscard]] const DecompressStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const std::vector<std::uint8_t>& output() const noexcept { return out_; }
  [[nodiscard]] const bram::DualPortRam& window_ram() const noexcept { return *window_; }

 private:
  void emit_byte(std::uint8_t b);

  DecompressorConfig cfg_;
  std::uint64_t w_mask_ = 0;
  std::unique_ptr<bram::DualPortRam> window_;
  std::vector<std::uint8_t> ring_;  // functional window contents

  stream::Channel<core::Token>* in_ = nullptr;
  bool in_done_ = false;

  // Copy-in-progress registers.
  bool copying_ = false;
  std::uint32_t copy_dist_ = 0;
  std::uint32_t copy_left_ = 0;
  bool copy_first_cycle_ = false;

  std::vector<std::uint8_t> out_;
  DecompressStats stats_;
};

}  // namespace lzss::hw
