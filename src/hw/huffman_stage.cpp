#include "hw/huffman_stage.hpp"

#include <cassert>

#include "common/bitio.hpp"
#include "deflate/fixed_tables.hpp"

namespace lzss::hw {

using deflate::distance_code;
using deflate::fixed_distance_code;
using deflate::fixed_litlen_code;
using deflate::length_code;

void HuffmanStage::put_bits(std::uint32_t value, unsigned n) {
  assert(pending_bits_ + n <= 64);
  acc_ |= static_cast<std::uint64_t>(value & ((n >= 32) ? 0xFFFFFFFFu : ((1u << n) - 1u)))
          << pending_bits_;
  pending_bits_ += n;
  bits_ += n;
}

void HuffmanStage::put_huffman(std::uint32_t code, unsigned n) {
  put_bits(bits::reverse_bits(code, n), n);
}

void HuffmanStage::start() {
  assert(!started_);
  started_ = true;
  put_bits(1, 1);     // BFINAL
  put_bits(0b01, 2);  // BTYPE = fixed Huffman
}

void HuffmanStage::encode(const core::Token& t) {
  const auto& lit = fixed_litlen_code();
  const auto& dist = fixed_distance_code();
  if (t.is_literal()) {
    const unsigned s = t.literal_byte();
    put_huffman(lit.code[s], lit.bits[s]);
  } else {
    const auto lc = length_code(t.length());
    put_huffman(lit.code[lc.symbol], lit.bits[lc.symbol]);
    if (lc.extra_bits != 0) put_bits(lc.extra_value, lc.extra_bits);
    const auto dc = distance_code(t.distance());
    put_huffman(dist.code[dc.symbol], dist.bits[dc.symbol]);
    if (dc.extra_bits != 0) put_bits(dc.extra_value, dc.extra_bits);
  }
  ++tokens_;
}

bool HuffmanStage::drain_word() {
  const bool have_word = pending_bits_ >= 32 || (finished_ && pending_bits_ > 0);
  if (!have_word) return true;  // nothing to drain, not a stall
  if (!out_->can_push()) {
    ++stalls_;
    return false;
  }
  out_->push(static_cast<std::uint32_t>(acc_ & 0xFFFFFFFFu));
  if (pending_bits_ >= 32) {
    acc_ >>= 32;
    pending_bits_ -= 32;
  } else {
    acc_ = 0;
    pending_bits_ = 0;  // final partial word, zero-padded
  }
  return true;
}

void HuffmanStage::tick() {
  assert(started_);
  if (!drain_word()) return;  // sink backpressure: also stop consuming tokens
  if (finished_) return;
  // One token per cycle; a single token adds at most 32 payload bits, so
  // the 64-bit accumulator can never overflow between drains.
  if (pending_bits_ <= 32 && in_->can_pop()) encode(in_->pop());
}

void HuffmanStage::finish() {
  assert(started_ && !finished_);
  const auto& lit = fixed_litlen_code();
  put_huffman(lit.code[deflate::kEndOfBlock], lit.bits[deflate::kEndOfBlock]);
  payload_bits_ = bits_;
  // Pad to the 32-bit word boundary of the output interface.
  const unsigned pad = (32 - (pending_bits_ & 31)) & 31;
  if (pad != 0) put_bits(0, pad);
  finished_ = true;
}

}  // namespace lzss::hw
