// VCD waveform tracing of a compression run.
//
// Dumps the main FSM state and the interesting architectural registers one
// sample per clock, producing a file GTKWave opens directly. Intended for
// debugging the model (or for teaching: the paper's section IV state flow is
// literally visible in the waveform).
#pragma once

#include <ostream>
#include <span>

#include "hw/compressor.hpp"

namespace lzss::hw {

struct TraceOptions {
  /// Stop tracing after this many cycles (the run itself continues);
  /// keeps waveforms of long inputs manageable. 0 = no limit.
  std::uint64_t max_trace_cycles = 0;
};

/// Compresses @p data under @p config, writing a VCD waveform to @p vcd_out.
/// Returns the same result compress() would.
CompressResult trace_compression(const HwConfig& config, std::span<const std::uint8_t> data,
                                 std::ostream& vcd_out, TraceOptions options = {});

}  // namespace lzss::hw
