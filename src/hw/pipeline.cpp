#include "hw/pipeline.hpp"

#include <stdexcept>

#include "hw/huffman_decode_stage.hpp"
#include "hw/huffman_stage.hpp"

namespace lzss::hw {

SystemReport run_system(const HwConfig& config, std::span<const std::uint8_t> input,
                        stream::DmaTimings dma) {
  SystemReport report;
  report.input_bytes = input.size();

  stream::Channel<core::Token> tokens(4);
  stream::Channel<std::uint32_t> words(4);

  Compressor comp(config);
  comp.set_input(input);
  comp.set_output_channel(&tokens);

  HuffmanStage huff(tokens, words);
  huff.start();

  stream::DramModel out_dram(input.size() + input.size() / 2 + 4096);
  stream::DmaWriter writer(out_dram, words, dma);
  writer.start(0);

  // The read-side DMA programs its descriptors before any data flows; the
  // write side is set up concurrently, so one setup interval is serial.
  std::uint64_t cycles = dma.setup_cycles;
  report.dma_setup_cycles = dma.setup_cycles;

  bool finishing = false;
  const std::uint64_t guard =
      static_cast<std::uint64_t>(input.size()) * (config.max_chain + 8) * 8 + 1'000'000;
  while (true) {
    comp.step();
    if (comp.done() && tokens.empty() && !finishing && !huff.flushed()) {
      huff.finish();
      finishing = true;
    }
    huff.tick();
    writer.tick();
    tokens.tick();
    words.tick();
    ++cycles;
    if (comp.done() && huff.flushed() && words.empty()) break;
    if (cycles > guard) throw std::runtime_error("run_system: cycle guard exceeded");
  }

  report.compressor = comp.stats();
  report.total_cycles = cycles;
  report.huffman_stall_cycles = huff.stall_cycles();
  report.deflate_bytes = static_cast<std::size_t>(huff.deflate_byte_count());
  report.deflate_stream = out_dram.dump(0, report.deflate_bytes);
  return report;
}

DecodeSystemReport run_decode_system(const DecompressorConfig& config,
                                     std::span<const std::uint8_t> deflate_stream,
                                     stream::DmaTimings dma) {
  DecodeSystemReport report;

  // Stage the (word-padded) stream in DRAM and arm the read engine.
  const std::size_t padded = (deflate_stream.size() + 3) & ~std::size_t{3};
  stream::DramModel in_dram(padded + 4096);
  in_dram.load(0, deflate_stream);

  stream::Channel<std::uint32_t> words(4);
  stream::Channel<core::Token> tokens(4);
  stream::DmaReader reader(in_dram, words, dma);
  reader.start(0, padded);

  HuffmanDecodeStage decode(words, tokens);
  Decompressor decomp(config);
  decomp.set_input_channel(&tokens);

  std::uint64_t cycles = 0;
  const std::uint64_t guard = deflate_stream.size() * 400 + 1'000'000;
  while (true) {
    reader.tick();
    if (reader.done()) decode.set_input_done();
    decode.tick();
    if (decode.finished() && tokens.empty()) decomp.set_input_done();
    decomp.step();
    words.tick();
    tokens.tick();
    ++cycles;
    if (decode.finished() && decomp.done()) break;
    if (cycles > guard) throw std::runtime_error("run_decode_system: cycle guard exceeded");
  }

  report.decompressor = decomp.stats();
  report.total_cycles = cycles;
  report.decode_refill_cycles = decode.refill_cycles();
  report.data = decomp.output();
  return report;
}

}  // namespace lzss::hw
