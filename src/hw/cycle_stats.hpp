// Per-state cycle accounting of the hardware model.
//
// The categories are exactly the ones in the paper's fig. 5 ("Time spent on
// different operations"): waiting for data, finding match, producing output,
// updating hash table, rotating hash, fetching data.
#pragma once

#include <cstdint>
#include <string>

namespace lzss::hw {

struct CycleStats {
  // Cycle counters per FSM activity (they sum to total_cycles).
  std::uint64_t waiting = 0;    ///< WaitData state (head read not overlapped)
  std::uint64_t fetching = 0;   ///< stalled on the background filler (input underrun)
  std::uint64_t matching = 0;   ///< match preparation + candidate comparison
  std::uint64_t output = 0;     ///< producing D/L output (including sink stalls)
  std::uint64_t updating = 0;   ///< full hash-table update after short matches
  std::uint64_t rotating = 0;   ///< head-table purge/rotation passes
  std::uint64_t total_cycles = 0;

  // Work counters.
  std::uint64_t bytes_in = 0;
  std::uint64_t literals = 0;
  std::uint64_t matches = 0;
  std::uint64_t match_bytes = 0;
  std::uint64_t chain_probes = 0;   ///< candidates examined
  std::uint64_t compare_bytes = 0;  ///< bytes compared by the wide comparer
  std::uint64_t rotation_passes = 0;
  std::uint64_t output_stall_cycles = 0;  ///< subset of `output`: sink backpressure
  std::uint64_t prefetch_hits = 0;        ///< WaitData skipped thanks to hash prefetch

  [[nodiscard]] std::uint64_t tokens() const noexcept { return literals + matches; }
  [[nodiscard]] double cycles_per_byte() const noexcept {
    return bytes_in == 0 ? 0.0 : static_cast<double>(total_cycles) / static_cast<double>(bytes_in);
  }
  /// Throughput in MB/s (10^6 bytes) at the given clock.
  [[nodiscard]] double mb_per_s(double clock_mhz) const noexcept {
    return total_cycles == 0
               ? 0.0
               : static_cast<double>(bytes_in) * clock_mhz / static_cast<double>(total_cycles);
  }
  [[nodiscard]] double fraction(std::uint64_t part) const noexcept {
    return total_cycles == 0 ? 0.0
                             : static_cast<double>(part) / static_cast<double>(total_cycles);
  }

  CycleStats& operator+=(const CycleStats& o) noexcept {
    waiting += o.waiting;
    fetching += o.fetching;
    matching += o.matching;
    output += o.output;
    updating += o.updating;
    rotating += o.rotating;
    total_cycles += o.total_cycles;
    bytes_in += o.bytes_in;
    literals += o.literals;
    matches += o.matches;
    match_bytes += o.match_bytes;
    chain_probes += o.chain_probes;
    compare_bytes += o.compare_bytes;
    rotation_passes += o.rotation_passes;
    output_stall_cycles += o.output_stall_cycles;
    prefetch_hits += o.prefetch_hits;
    return *this;
  }
};

}  // namespace lzss::hw
