// Cycle-accurate model of the FPGA LZSS compressor (the paper's section IV).
//
// One step() call is one 100 MHz clock cycle. Within a cycle:
//   * the background filling logic may write one 32-bit word into the
//     lookahead ring and the dictionary ring (port B of each) and record
//     hash-cache entries for the bytes whose 3-byte window completed;
//   * the main FSM performs one state's worth of work: WaitData, MatchPrep,
//     Matching (one comparer iteration: 1..4 bytes on the first cycle of a
//     candidate, bus-width bytes afterwards, with the next-table read
//     overlapped), Output (one D/L pair, stalling on sink backpressure),
//     HashUpdate (one chain insertion per cycle for short matches) or
//     Rotate (head-table purge pass, M sub-memories in parallel);
//   * every memory's ports are re-armed.
//
// Functional data (the actual bytes and chain contents) is held in shadow
// ring buffers; the DualPortRam instances carry the architecturally
// significant state (head/next entries with generation-bit truncation) and
// enforce the one-access-per-port-per-cycle discipline that makes the
// design's parallelism claims checkable.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "bram/dual_port_ram.hpp"
#include "hw/config.hpp"
#include "hw/cycle_stats.hpp"
#include "lzss/token.hpp"
#include "stream/channel.hpp"
#include "stream/word_packer.hpp"

namespace lzss::hw {

/// Result of a one-shot compression run.
struct CompressResult {
  std::vector<core::Token> tokens;
  CycleStats stats;
};

class Compressor {
 public:
  explicit Compressor(HwConfig config);

  /// One-shot: feeds @p input, runs the clock until the FSM drains, returns
  /// the token stream and the cycle census. No sink backpressure.
  [[nodiscard]] CompressResult compress(std::span<const std::uint8_t> input);

  /// Word-interface variant matching the paper's input port: "the compressor
  /// consumes 32-bit words (LSBF/MSBF format can be selected)". @p byte_count
  /// trims the final word's padding lanes.
  [[nodiscard]] CompressResult compress_words(std::span<const std::uint32_t> words,
                                              std::size_t byte_count, stream::ByteOrder order);

  // --- streaming / pipeline interface ------------------------------------
  /// Restarts the machine (clears rings, tables, statistics).
  void reset();
  /// Provides the input buffer. The span must stay alive until done().
  void set_input(std::span<const std::uint8_t> input);
  /// Routes tokens into @p channel instead of the internal vector; the
  /// Output state stalls while the channel is full.
  void set_output_channel(stream::Channel<core::Token>* channel) { out_channel_ = channel; }
  /// Advances one clock cycle.
  void step();
  [[nodiscard]] bool done() const noexcept { return state_ == State::kDone; }

  [[nodiscard]] const CycleStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const HwConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] const std::vector<core::Token>& tokens() const noexcept { return tokens_; }

  /// Per-cycle snapshot of the architectural registers, for tracing and
  /// debugging (see hw/trace.hpp for the VCD dumper built on it).
  struct DebugView {
    const char* state_name;
    unsigned state_code;  ///< stable encoding, 0..6
    std::uint64_t pos;
    std::uint64_t fill_pos;
    std::uint64_t occupancy;
    std::uint32_t best_len;
    std::uint32_t chain_left;
    std::uint32_t cand_len;
  };
  [[nodiscard]] DebugView debug_view() const noexcept;

  /// The five independently addressable memories, for tests and reports.
  [[nodiscard]] const bram::DualPortRam& lookahead_ram() const noexcept { return *lookahead_; }
  [[nodiscard]] const bram::DualPortRam& dictionary_ram() const noexcept { return *dict_; }
  [[nodiscard]] const bram::DualPortRam& hash_cache_ram() const noexcept { return *hash_cache_; }
  [[nodiscard]] const bram::DualPortRam& head_ram() const noexcept { return *head_; }
  [[nodiscard]] const bram::DualPortRam& next_ram() const noexcept { return *next_; }

 private:
  enum class State : std::uint8_t {
    kWaitData,
    kMatchPrep,
    kMatching,
    kOutput,
    kHashUpdate,
    kRotate,
    kDone,
  };

  void filler_step();
  void fsm_step();
  void tick_memories();

  void enter_prep_or_wait_after_advance(std::uint32_t advance);
  void start_rotation();
  void emit(const core::Token& t);

  [[nodiscard]] std::uint64_t occupancy() const noexcept { return fill_pos_ - pos_; }
  [[nodiscard]] std::uint64_t remaining() const noexcept { return in_.size() - pos_; }
  [[nodiscard]] std::uint64_t wait_threshold() const noexcept {
    return std::min<std::uint64_t>(262, remaining());
  }
  [[nodiscard]] std::uint8_t stream_byte(std::uint64_t p) const noexcept {
    return la_ring_[p & la_mask_];
  }
  /// Reconstructs the age of a modular head/next entry; 0 means invalid/NIL.
  [[nodiscard]] std::uint64_t entry_age(std::uint64_t now, std::uint32_t entry) const noexcept {
    if (entry == 0) return 0;
    return (now - entry) & pos_mask_;
  }
  [[nodiscard]] std::uint32_t hash_at(std::uint64_t p) const noexcept {
    return hash_shadow_[p & la_mask_];
  }
  /// Inserts position @p p into head/next (one port op on each memory).
  void chain_insert(std::uint64_t p, std::uint32_t h);
  /// Begins comparing a new candidate; returns false if none is viable.
  void begin_candidate(std::uint64_t cand_abs);
  void purge_head();

  HwConfig cfg_;
  // Derived constants.
  std::uint64_t n_ = 0;         // dictionary size
  std::uint64_t n_mask_ = 0;    // n-1
  std::uint64_t la_mask_ = 0;   // lookahead-1
  std::uint64_t pos_mask_ = 0;  // 2^(dict_bits+G) - 1
  std::uint32_t max_dist_ = 0;
  std::uint32_t fill_ahead_ = 0;

  // Memories (architectural state + port accounting).
  std::unique_ptr<bram::DualPortRam> lookahead_, dict_, hash_cache_, head_, next_;
  // Shadow data (functional contents of the byte rings / hash cache).
  std::vector<std::uint8_t> la_ring_, dict_ring_;
  std::vector<std::uint32_t> hash_shadow_;

  // Input.
  std::vector<std::uint8_t> word_input_;  // backing store for compress_words
  std::span<const std::uint8_t> in_;
  std::uint64_t fill_pos_ = 0;
  std::uint64_t pos_ = 0;

  // FSM registers.
  State state_ = State::kWaitData;
  std::uint32_t cur_hash_ = 0;
  bool prefetch_valid_ = false;

  // Matching registers.
  std::uint64_t cand_ = 0;         // absolute position of the candidate string
  std::uint32_t cand_len_ = 0;     // bytes matched so far for this candidate
  std::uint32_t cand_max_ = 0;     // cap for this candidate
  bool cand_first_cycle_ = false;  // alignment-limited first comparer iteration
  std::uint64_t succ_ = 0;         // next candidate (from the overlapped read)
  bool succ_valid_ = false;
  std::uint32_t chain_left_ = 0;
  std::uint32_t best_len_ = 0;
  std::uint32_t best_dist_ = 0;

  // Hash update registers.
  std::uint64_t ins_pos_ = 0;
  std::uint64_t ins_end_ = 0;

  // Rotation.
  std::uint64_t next_rotation_ = 0;
  std::uint64_t rotate_left_ = 0;

  // Output.
  stream::Channel<core::Token>* out_channel_ = nullptr;
  std::vector<core::Token> tokens_;

  CycleStats stats_;
};

}  // namespace lzss::hw
