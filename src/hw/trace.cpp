#include "hw/trace.hpp"

#include <stdexcept>

#include "common/vcd.hpp"

namespace lzss::hw {

CompressResult trace_compression(const HwConfig& config, std::span<const std::uint8_t> data,
                                 std::ostream& vcd_out, TraceOptions options) {
  Compressor comp(config);
  comp.set_input(data);

  vcd::VcdWriter w(vcd_out, "lzss_compressor");
  const auto sig_state = w.add_signal("fsm_state", 3);
  const auto sig_pos = w.add_signal("position", 32);
  const auto sig_fill = w.add_signal("fill_position", 32);
  const auto sig_occ = w.add_signal("lookahead_occupancy", 16);
  const auto sig_best = w.add_signal("best_match_len", 9);
  const auto sig_chain = w.add_signal("chain_left", 13);
  const auto sig_cand = w.add_signal("candidate_len", 9);
  w.begin_dump();

  const std::uint64_t guard =
      static_cast<std::uint64_t>(data.size()) * (config.max_chain + 8) * 8 + 1'000'000;
  while (!comp.done()) {
    comp.step();
    if (options.max_trace_cycles == 0 || w.cycles() < options.max_trace_cycles) {
      const auto v = comp.debug_view();
      w.change(sig_state, v.state_code);
      w.change(sig_pos, v.pos & 0xFFFFFFFFu);
      w.change(sig_fill, v.fill_pos & 0xFFFFFFFFu);
      w.change(sig_occ, v.occupancy & 0xFFFFu);
      w.change(sig_best, v.best_len);
      w.change(sig_chain, v.chain_left);
      w.change(sig_cand, v.cand_len);
      w.tick();
    }
    if (comp.stats().total_cycles > guard)
      throw std::runtime_error("trace_compression: cycle guard exceeded");
  }
  return {comp.tokens(), comp.stats()};
}

}  // namespace lzss::hw
