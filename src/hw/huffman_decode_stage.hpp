// Fixed-table Huffman decode stage (the decompression-side dual of
// HuffmanStage).
//
// Consumes the 32-bit words of a single fixed-Huffman Deflate block and
// emits D/L tokens. Because the table is fixed, a hardware implementation
// decodes a whole symbol per clock with a parallel LUT; the model charges
// one cycle per literal and two per match (length symbol + distance
// symbol), plus refill cycles whenever the bit buffer cannot cover a
// worst-case decode step and more input is still expected.
#pragma once

#include <cstdint>

#include "lzss/token.hpp"
#include "stream/channel.hpp"

namespace lzss::hw {

class HuffmanDecodeStage {
 public:
  HuffmanDecodeStage(stream::Channel<std::uint32_t>& in, stream::Channel<core::Token>& out)
      : in_(&in), out_(&out) {}

  /// Tells the stage no further input words will arrive; with the channel
  /// drained it may then decode from a partially filled bit buffer.
  void set_input_done() noexcept { in_done_ = true; }

  /// One clock cycle.
  void tick();

  /// True once the end-of-block symbol has been decoded.
  [[nodiscard]] bool finished() const noexcept { return finished_; }

  [[nodiscard]] std::uint64_t tokens_decoded() const noexcept { return tokens_; }
  [[nodiscard]] std::uint64_t refill_cycles() const noexcept { return refills_; }
  [[nodiscard]] std::uint64_t stall_cycles() const noexcept { return stalls_; }

 private:
  [[nodiscard]] bool have(unsigned n) const noexcept { return nbits_ >= n; }
  [[nodiscard]] std::uint32_t take(unsigned n);
  [[nodiscard]] unsigned decode_symbol(bool distance);

  stream::Channel<std::uint32_t>* in_;
  stream::Channel<core::Token>* out_;
  std::uint64_t acc_ = 0;
  unsigned nbits_ = 0;
  bool in_done_ = false;
  bool header_parsed_ = false;
  bool finished_ = false;
  // A match decodes over two cycles; the length is parked here in between.
  bool pending_match_ = false;
  std::uint32_t pending_length_ = 0;
  std::uint64_t tokens_ = 0;
  std::uint64_t refills_ = 0;
  std::uint64_t stalls_ = 0;
};

}  // namespace lzss::hw
