#include "hw/metrics.hpp"

namespace lzss::hw {

void export_cycle_stats(obs::Registry& registry, const CycleStats& stats) {
  const std::pair<const char*, std::uint64_t> states[] = {
      {"waiting", stats.waiting},   {"fetching", stats.fetching},
      {"matching", stats.matching}, {"output", stats.output},
      {"updating", stats.updating}, {"rotating", stats.rotating},
  };
  for (const auto& [state, cycles] : states)
    registry.counter("hw_state_cycles_total", {{"state", state}}).add(cycles);
  registry.counter("hw_cycles_total").add(stats.total_cycles);
  registry.counter("hw_bytes_in_total").add(stats.bytes_in);
  registry.counter("hw_tokens_total", {{"kind", "literal"}}).add(stats.literals);
  registry.counter("hw_tokens_total", {{"kind", "match"}}).add(stats.matches);
  registry.counter("hw_match_bytes_total").add(stats.match_bytes);
  registry.counter("hw_chain_probes_total").add(stats.chain_probes);
  registry.counter("hw_compare_bytes_total").add(stats.compare_bytes);
  registry.counter("hw_output_stall_cycles_total").add(stats.output_stall_cycles);
  registry.counter("hw_prefetch_hits_total").add(stats.prefetch_hits);
}

}  // namespace lzss::hw
