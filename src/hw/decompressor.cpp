#include "hw/decompressor.hpp"

#include <algorithm>
#include <stdexcept>

#include "lzss/decoder.hpp"

namespace lzss::hw {

using bram::Port;

void DecompressorConfig::validate() const {
  if (window_bits < 9 || window_bits > 16)
    throw std::invalid_argument("DecompressorConfig: window_bits must be 9..16");
  if (bus_width_bytes != 1 && bus_width_bytes != 2 && bus_width_bytes != 4)
    throw std::invalid_argument("DecompressorConfig: bus width must be 1, 2 or 4 bytes");
}

Decompressor::Decompressor(DecompressorConfig config) : cfg_(config) {
  cfg_.validate();
  w_mask_ = cfg_.window_size() - 1;
  window_ = std::make_unique<bram::DualPortRam>("window", cfg_.window_size() / 4, 32);
  ring_.assign(cfg_.window_size(), 0);
  reset();
}

void Decompressor::reset() {
  window_->reset();
  std::fill(ring_.begin(), ring_.end(), 0);
  in_done_ = false;
  copying_ = false;
  copy_dist_ = copy_left_ = 0;
  out_.clear();
  stats_ = DecompressStats{};
}

bool Decompressor::done() const noexcept {
  return in_done_ && !copying_ && (in_ == nullptr || in_->empty());
}

void Decompressor::emit_byte(std::uint8_t b) {
  ring_[out_.size() & w_mask_] = b;
  out_.push_back(b);
  ++stats_.bytes_out;
}

void Decompressor::step() {
  if (done()) return;
  ++stats_.total_cycles;

  if (copying_) {
    // One copy iteration: read up to bus_width bytes from the window via
    // port A, write them back at the output position via port B. An
    // overlapping match (distance < chunk) can only replicate `distance`
    // bytes per cycle — the source bytes beyond that have not been written
    // yet in this clock.
    std::uint32_t chunk = cfg_.bus_width_bytes;
    if (copy_first_cycle_) {
      const std::uint64_t src = (out_.size() - copy_dist_) & w_mask_;
      chunk = cfg_.bus_width_bytes == 1
                  ? 1
                  : cfg_.bus_width_bytes -
                        static_cast<std::uint32_t>(src % cfg_.bus_width_bytes);
      copy_first_cycle_ = false;
    }
    chunk = std::min({chunk, copy_left_, copy_dist_});
    (void)window_->read(Port::A, ((out_.size() - copy_dist_) & w_mask_) / 4);
    for (std::uint32_t i = 0; i < chunk; ++i) {
      emit_byte(ring_[(out_.size() - copy_dist_) & w_mask_]);
    }
    window_->write(Port::B, (((out_.size() - 1) & w_mask_) / 4),
                   0 /* modelled write; data tracked in ring_ */);
    copy_left_ -= chunk;
    if (copy_left_ == 0) copying_ = false;
    ++stats_.copy_cycles;
    window_->tick();
    return;
  }

  if (in_ == nullptr || !in_->can_pop()) {
    ++stats_.idle_cycles;
    window_->tick();
    return;
  }

  const core::Token t = in_->pop();
  if (t.is_literal()) {
    emit_byte(t.literal_byte());
    window_->write(Port::B, ((out_.size() - 1) & w_mask_) / 4, t.literal_byte());
    ++stats_.literals;
    ++stats_.literal_cycles;
  } else {
    if (t.distance() == 0 || t.distance() > out_.size())
      throw core::DecodeError("hw::Decompressor: distance exceeds produced data");
    if (t.distance() >= cfg_.window_size())
      throw core::DecodeError("hw::Decompressor: distance exceeds the window");
    if (t.length() < core::kMinMatch || t.length() > core::kMaxMatch)
      throw core::DecodeError("hw::Decompressor: bad match length");
    copying_ = true;
    copy_dist_ = t.distance();
    copy_left_ = t.length();
    copy_first_cycle_ = true;
    ++stats_.matches;
    ++stats_.copy_cycles;  // the issue cycle doubles as the first copy cycle
    // The first chunk transfers in this same cycle.
    std::uint32_t chunk = cfg_.bus_width_bytes == 1
                              ? 1
                              : cfg_.bus_width_bytes -
                                    static_cast<std::uint32_t>(
                                        ((out_.size() - copy_dist_) & w_mask_) %
                                        cfg_.bus_width_bytes);
    chunk = std::min({chunk, copy_left_, copy_dist_});
    (void)window_->read(Port::A, ((out_.size() - copy_dist_) & w_mask_) / 4);
    for (std::uint32_t i = 0; i < chunk; ++i) {
      emit_byte(ring_[(out_.size() - copy_dist_) & w_mask_]);
    }
    window_->write(Port::B, ((out_.size() - 1) & w_mask_) / 4, 0);
    copy_left_ -= chunk;
    copy_first_cycle_ = false;
    if (copy_left_ == 0) copying_ = false;
  }
  window_->tick();
}

DecompressResult Decompressor::decompress(std::span<const core::Token> tokens) {
  reset();
  stream::Channel<core::Token> ch(2);
  in_ = &ch;
  std::size_t fed = 0;
  const std::uint64_t guard = tokens.size() * 300 + 1'000'000;
  while (true) {
    if (fed < tokens.size() && ch.can_push()) ch.push(tokens[fed++]);
    if (fed == tokens.size()) in_done_ = true;
    step();
    ch.tick();
    if (done()) break;
    if (stats_.total_cycles > guard)
      throw std::runtime_error("hw::Decompressor: cycle guard exceeded");
  }
  in_ = nullptr;
  return {out_, stats_};
}

}  // namespace lzss::hw
