// Fixed-table pipelined Huffman encoder stage.
//
// Consumes one D/L pair per clock from the compressor's output channel and
// emits packed 32-bit words. Because the table is fixed (RFC 1951 section
// 3.2.6) no cycles are ever spent building it and the stage sustains one
// token per cycle — "the encoder does not introduce any delays to the stream
// produced by the LZSS compressor". Backpressure from the word sink
// propagates upstream by simply not consuming tokens.
#pragma once

#include <cstdint>

#include "lzss/token.hpp"
#include "stream/channel.hpp"

namespace lzss::hw {

class HuffmanStage {
 public:
  HuffmanStage(stream::Channel<core::Token>& in, stream::Channel<std::uint32_t>& out)
      : in_(&in), out_(&out) {}

  /// Emits the Deflate block header (BFINAL=1, BTYPE=fixed).
  void start();

  /// One clock cycle: drain a completed word if any, else encode one token.
  void tick();

  /// Call when the upstream is done and the token channel has drained:
  /// emits the end-of-block symbol and pads to a word boundary. May need
  /// several ticks afterwards to flush; check flushed().
  void finish();

  [[nodiscard]] bool flushed() const noexcept { return finished_ && pending_bits_ == 0; }

  [[nodiscard]] std::uint64_t tokens_encoded() const noexcept { return tokens_; }
  [[nodiscard]] std::uint64_t bits_emitted() const noexcept { return bits_; }
  /// Deflate payload size in bytes (excluding the final word padding) —
  /// what a zlib container must wrap so the checksum lands where a stock
  /// zlib inflater expects it.
  [[nodiscard]] std::uint64_t deflate_byte_count() const noexcept {
    return (payload_bits_ + 7) / 8;
  }
  /// Cycles this stage could not accept a token because its sink was full.
  [[nodiscard]] std::uint64_t stall_cycles() const noexcept { return stalls_; }

 private:
  void put_bits(std::uint32_t value, unsigned n);
  void put_huffman(std::uint32_t code, unsigned n);
  void encode(const core::Token& t);
  /// Pushes one completed 32-bit word if available and the sink has room.
  bool drain_word();

  stream::Channel<core::Token>* in_;
  stream::Channel<std::uint32_t>* out_;
  std::uint64_t acc_ = 0;  // pending bits, LSB-first
  unsigned pending_bits_ = 0;
  bool started_ = false;
  bool finished_ = false;
  std::uint64_t tokens_ = 0;
  std::uint64_t bits_ = 0;
  std::uint64_t payload_bits_ = 0;
  std::uint64_t stalls_ = 0;
};

}  // namespace lzss::hw
