// Lightweight trace spans recorded into a fixed-size ring.
//
// The hw model already has cycle-exact tracing (hw/trace.hpp dumps VCD); the
// service layer needs the wall-clock analogue: who processed which request,
// when, for how long, and with what outcome. A TraceRing keeps the most
// recent N completed spans in a preallocated ring — recording is a mutex'd
// struct copy, no allocation — and exports them as JSONL (one event object
// per line, Chrome-trace-like fields) for offline digestion.
//
// Spans are RAII: construct at the start of the unit of work, annotate with
// a0/a1/tag, and the destructor stamps the end time and records. A null ring
// pointer disables a span entirely, so call sites stay unconditional.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace lzss::obs {

/// One completed span. Name/tag are fixed-size char arrays so the ring is a
/// single flat allocation and recording never touches the heap.
struct TraceEvent {
  std::uint64_t start_us = 0;  ///< microseconds since process start (steady)
  std::uint64_t end_us = 0;
  std::uint32_t tid = 0;       ///< hashed thread id
  char name[24] = {};          ///< what ran, e.g. "compress", "store.fsync"
  char tag[16] = {};           ///< outcome, e.g. a status name
  std::int64_t a0 = 0;         ///< span-defined args (bytes in, sequence, ...)
  std::int64_t a1 = 0;
};

class TraceRing {
 public:
  explicit TraceRing(std::size_t capacity = 4096);

  void record(const TraceEvent& event);

  /// Events oldest-to-newest. Total recorded counts overwrites, so
  /// `recorded() - events().size()` is how many the ring has forgotten.
  [[nodiscard]] std::vector<TraceEvent> events() const;
  [[nodiscard]] std::uint64_t recorded() const;
  [[nodiscard]] std::size_t capacity() const noexcept { return ring_.size(); }

  /// One JSON object per line:
  /// {"name":"compress","start_us":..,"dur_us":..,"tid":..,"tag":"OK","a0":..,"a1":..}
  [[nodiscard]] std::string to_jsonl() const;

  /// Microseconds since process start on the steady clock (the spans'
  /// timebase).
  [[nodiscard]] static std::uint64_t now_us() noexcept;

 private:
  mutable std::mutex mutex_;
  std::vector<TraceEvent> ring_;
  std::uint64_t recorded_ = 0;  ///< next slot = recorded_ % capacity
};

/// RAII span: stamps start at construction, records into the ring (when
/// non-null) at destruction.
class Span {
 public:
  Span(TraceRing* ring, const char* name) noexcept;
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  void set_tag(const char* tag) noexcept;
  void set_args(std::int64_t a0, std::int64_t a1 = 0) noexcept { a0_ = a0; a1_ = a1; }

 private:
  TraceRing* ring_;
  const char* name_;
  const char* tag_ = "";
  std::int64_t a0_ = 0;
  std::int64_t a1_ = 0;
  std::uint64_t start_us_ = 0;
};

/// Process-wide default ring (what lzssd exports with --trace-jsonl).
[[nodiscard]] TraceRing& default_trace();

}  // namespace lzss::obs
