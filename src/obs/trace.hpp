// Request-scoped trace spans recorded into a fixed-size ring.
//
// The hw model already has cycle-exact tracing (hw/trace.hpp dumps VCD); the
// service layer needs the wall-clock analogue: who processed which request,
// when, for how long, and with what outcome. A TraceRing keeps the most
// recent N completed spans in a preallocated ring — recording is a mutex'd
// struct copy, no allocation — and exports them as JSONL (one event object
// per line, Chrome-trace-like fields) for offline digestion or a live
// `GET /trace` scrape.
//
// Spans are RAII: construct at the start of the unit of work, annotate with
// a0/a1/tag, and the destructor stamps the end time and records. A null ring
// pointer disables a span entirely, so call sites stay unconditional.
//
// Spans carry trace/span/parent ids so one request yields a hierarchical
// tree. Propagation is via a thread-local TraceContext: a Span reads the
// current context for its trace id and parent, then installs itself as the
// parent for anything nested on the same thread. Crossing a thread (queue
// hand-off, block fan-out) means capturing `current_trace()` on the near
// side and installing it with a TraceScope on the far side.
//
// Timebases: durations are measured on the steady clock (`start_us`/`end_us`
// are microseconds since process start) so spans survive NTP steps; each
// event additionally records the wall-clock epoch time of its start
// (`wall_us`) so traces can be correlated with external logs.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace lzss::obs {

/// One completed span. Name/tag are fixed-size char arrays so the ring is a
/// single flat allocation and recording never touches the heap.
struct TraceEvent {
  std::uint64_t trace_id = 0;   ///< request tree id; 0 = untraced (flat span)
  std::uint64_t span_id = 0;    ///< unique per span within the process
  std::uint64_t parent_id = 0;  ///< 0 = root of its trace
  std::uint64_t start_us = 0;   ///< microseconds since process start (steady)
  std::uint64_t end_us = 0;
  std::uint64_t wall_us = 0;    ///< wall-clock epoch microseconds at start
  std::uint32_t tid = 0;        ///< hashed thread id
  char name[32] = {};           ///< what ran, e.g. "request.compress_blocked"
  char tag[16] = {};            ///< outcome, e.g. a status name
  std::int64_t a0 = 0;          ///< span-defined args (bytes in, sequence, ...)
  std::int64_t a1 = 0;
};

/// The propagated half of a span: which trace the current thread is working
/// for and which span is the parent of anything started now. trace_id == 0
/// means "not inside a traced request" — spans still record, just flat.
struct TraceContext {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;  ///< parent for spans opened under this context
  [[nodiscard]] constexpr bool active() const noexcept { return trace_id != 0; }
};

/// The calling thread's current context (what a new Span would parent under).
[[nodiscard]] TraceContext current_trace() noexcept;

/// Fresh nonzero ids. Trace ids mix a per-boot seed so ids from different
/// runs don't collide in aggregated logs; span ids are a cheap counter.
[[nodiscard]] std::uint64_t next_trace_id() noexcept;
[[nodiscard]] std::uint64_t next_span_id() noexcept;

/// RAII: installs `ctx` as the calling thread's current context, restores
/// the previous one on destruction. Use at thread hand-off boundaries
/// (worker dequeue, block fan-out) to re-root nested spans.
class TraceScope {
 public:
  explicit TraceScope(TraceContext ctx) noexcept;
  ~TraceScope();
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  TraceContext prev_;
};

class TraceRing {
 public:
  explicit TraceRing(std::size_t capacity = 4096);

  void record(const TraceEvent& event);

  /// Events oldest-to-newest. Total recorded counts overwrites, so
  /// `recorded() - events().size()` is how many the ring has forgotten.
  [[nodiscard]] std::vector<TraceEvent> events() const;
  [[nodiscard]] std::uint64_t recorded() const;
  [[nodiscard]] std::size_t capacity() const noexcept { return ring_.size(); }

  /// Events belonging to one trace, oldest-to-newest.
  [[nodiscard]] std::vector<TraceEvent> events_for(std::uint64_t trace_id) const;

  /// Copy every event of `trace_id` into `dst` (the slow-request keep-ring).
  /// Returns the number of events copied.
  std::size_t copy_trace(std::uint64_t trace_id, TraceRing& dst) const;

  /// One JSON object per line:
  /// {"name":"compress","trace_id":"b0b1..","span_id":"..","parent_id":"..",
  ///  "start_us":..,"dur_us":..,"wall_us":..,"tid":..,"tag":"OK","a0":..,"a1":..}
  /// trace/span/parent ids are 16-digit zero-padded hex strings (0 = absent).
  [[nodiscard]] std::string to_jsonl() const;

  /// Microseconds since process start on the steady clock (the spans'
  /// duration timebase).
  [[nodiscard]] static std::uint64_t now_us() noexcept;

  /// Wall-clock epoch microseconds (the spans' correlation timebase).
  [[nodiscard]] static std::uint64_t wall_now_us() noexcept;

 private:
  mutable std::mutex mutex_;
  std::vector<TraceEvent> ring_;
  std::uint64_t recorded_ = 0;  ///< next slot = recorded_ % capacity
};

/// Render one event as a JSONL line (shared by to_jsonl and the HTTP plane).
void append_event_jsonl(std::string& out, const TraceEvent& e);

/// RAII span: stamps start at construction, records into the ring (when
/// non-null) at destruction. Reads the thread-local context for trace id and
/// parent, and installs itself as the current parent until destruction.
class Span {
 public:
  Span(TraceRing* ring, const char* name) noexcept;
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  void set_tag(const char* tag) noexcept;
  void set_args(std::int64_t a0, std::int64_t a1 = 0) noexcept { a0_ = a0; a1_ = a1; }

  [[nodiscard]] std::uint64_t span_id() const noexcept { return span_id_; }

 private:
  TraceRing* ring_;
  const char* name_;
  const char* tag_ = "";
  std::int64_t a0_ = 0;
  std::int64_t a1_ = 0;
  std::uint64_t start_us_ = 0;
  std::uint64_t wall_us_ = 0;
  std::uint64_t span_id_ = 0;
  TraceContext prev_;  ///< restored on destruction (only when ring_ != null)
};

/// Process-wide default ring (what lzssd exports with --trace-jsonl).
[[nodiscard]] TraceRing& default_trace();

}  // namespace lzss::obs
