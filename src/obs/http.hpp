// Minimal HTTP/1.0 GET sidecar for live telemetry scrapes.
//
// Prometheus wants to scrape a running daemon, and an operator debugging a
// slow request wants the trace ring NOW, not at shutdown. This listener is
// deliberately tiny: one background thread, blocking accept via poll(2) with
// a self-pipe for shutdown, GET-only, `Connection: close`, each response
// rendered by a registered callback at request time. It serves telemetry
// text to a handful of trusted scrapers — it is not a general web server
// (no keep-alive, no TLS, no request bodies, 8 KiB request cap).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace lzss::obs {

class HttpSidecar {
 public:
  /// Binds and listens on 127.0.0.1:@p port (0 = kernel-assigned; read the
  /// result back with port()). Throws std::runtime_error on bind failure.
  explicit HttpSidecar(std::uint16_t port);
  ~HttpSidecar();
  HttpSidecar(const HttpSidecar&) = delete;
  HttpSidecar& operator=(const HttpSidecar&) = delete;

  /// Register @p body to answer `GET path` (exact match) with @p content_type.
  /// Call before start(); handlers run on the sidecar thread.
  void handle(std::string path, std::string content_type,
              std::function<std::string()> body);

  void start();
  void stop() noexcept;

  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }
  [[nodiscard]] std::uint64_t requests_served() const noexcept;

 private:
  struct Endpoint {
    std::string path;
    std::string content_type;
    std::function<std::string()> body;
  };

  void serve_loop();
  void serve_one(int fd);

  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};
  std::uint16_t port_ = 0;
  std::vector<Endpoint> endpoints_;
  std::thread thread_;
  bool running_ = false;
  std::atomic<std::uint64_t> served_{0};
};

}  // namespace lzss::obs
