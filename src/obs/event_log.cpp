#include "obs/event_log.hpp"

#include <chrono>
#include <cinttypes>

#include "obs/metrics.hpp"

namespace lzss::obs {

const char* event_level_name(EventLevel level) noexcept {
  switch (level) {
    case EventLevel::kDebug: return "debug";
    case EventLevel::kInfo: return "info";
    case EventLevel::kWarn: return "warn";
    case EventLevel::kError: return "error";
  }
  return "?";
}

EventLog::Field EventLog::num(std::string_view key, std::int64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRId64, v);
  return Field{key, buf, /*raw=*/true};
}

EventLog::Field EventLog::str(std::string_view key, std::string_view v) {
  return Field{key, std::string(v), /*raw=*/false};
}

EventLog::EventLog(std::size_t ring_capacity)
    : capacity_(ring_capacity == 0 ? 1 : ring_capacity) {}

EventLog::~EventLog() {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (file_ != nullptr) std::fclose(file_);
}

bool EventLog::open_jsonl(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "ae");
  if (f == nullptr) return false;
  const std::lock_guard<std::mutex> lock(mutex_);
  if (file_ != nullptr) std::fclose(file_);
  file_ = f;
  return true;
}

void EventLog::emit(EventLevel level, std::string_view component,
                    std::string_view event, std::initializer_list<Field> fields) {
  if (level < min_level_) return;
  const auto now = std::chrono::system_clock::now().time_since_epoch();
  const std::uint64_t ts_us = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(now).count());

  const std::lock_guard<std::mutex> lock(mutex_);

  std::uint64_t dropped_prior = 0;
  if (rate_ != 0) {
    std::string key;
    key.reserve(component.size() + 1 + event.size());
    key.append(component);
    key += ':';
    key.append(event);
    Bucket& b = buckets_[key];
    const std::uint64_t window_s = ts_us / 1000000;
    if (b.window_s != window_s) {
      b.window_s = window_s;
      b.admitted = 0;
    }
    if (b.admitted >= rate_ * 2) {  // burst allowance: 2x sustained rate
      ++b.dropped;
      ++dropped_;
      return;
    }
    ++b.admitted;
    dropped_prior = b.dropped;
    b.dropped = 0;
  }

  std::string line;
  line.reserve(128);
  line += "{\"ts_us\":";
  {
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%" PRIu64, ts_us);
    line += buf;
  }
  line += ",\"level\":\"";
  line += event_level_name(level);
  line += "\",\"component\":\"";
  append_json_escaped(line, component);
  line += "\",\"event\":\"";
  append_json_escaped(line, event);
  line += '"';
  for (const Field& f : fields) {
    line += ",\"";
    append_json_escaped(line, f.key);
    line += "\":";
    if (f.raw) {
      line += f.value;
    } else {
      line += '"';
      append_json_escaped(line, f.value);
      line += '"';
    }
  }
  if (dropped_prior != 0) {
    char buf[40];
    std::snprintf(buf, sizeof(buf), ",\"dropped_prior\":%" PRIu64, dropped_prior);
    line += buf;
  }
  line += '}';

  ++emitted_;
  ring_.push_back(line);
  while (ring_.size() > capacity_) ring_.pop_front();
  if (file_ != nullptr) {
    std::fputs(line.c_str(), file_);
    std::fputc('\n', file_);
    std::fflush(file_);  // events are rare; durability beats batching here
  }
}

std::vector<std::string> EventLog::recent() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return {ring_.begin(), ring_.end()};
}

std::string EventLog::recent_jsonl() const {
  std::string out;
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const std::string& line : ring_) {
    out += line;
    out += '\n';
  }
  return out;
}

std::uint64_t EventLog::emitted() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return emitted_;
}

std::uint64_t EventLog::dropped() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return dropped_;
}

}  // namespace lzss::obs
