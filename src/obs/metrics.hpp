// Process-wide metrics: counters, gauges, and log-linear latency histograms.
//
// The paper's evaluation is itself an observability exercise — fig. 5 is a
// per-FSM-state cycle census produced by the cycle-accurate model — and the
// service layer needs the same discipline at request granularity. This module
// is the one place every layer reports into: server::Service (per-opcode
// latency, queue depth/wait, worker occupancy), store::LogStore (fsync
// latency, recovery actions), hw::Compressor (the fig. 5 census re-exported
// per state), and the fault registry (per-point trigger counts).
//
// Design constraints, in order:
//  * Hot-path writes must be cheap and never serialize request threads.
//    Every instrument is sharded: a thread picks a fixed shard (assigned
//    round-robin on first use, cache-line padded) and does one relaxed
//    fetch_add there. No mutex, no ring overwrite, no dropped samples —
//    this replaces the 1024-sample mutex-guarded latency ring the service
//    used to keep.
//  * Scrapes are rare and may be slow: snapshot() merges the shards, runs
//    registered collectors (pull-style sources like queue depth or the
//    fault-point table), and renders to Prometheus text or JSON.
//  * Histograms are log-linear (4 linear sub-buckets per power of two, the
//    HdrHistogram compromise): ~25 % worst-case relative error on reported
//    quantiles, fixed 164-bucket footprint, values up to 2^41 (≈ 25 days
//    in microseconds) before clamping to the last bucket.
//
// A Registry is an instantiable object, not a singleton: the service owns
// one per instance (so tests stay isolated), and lzssd creates a single
// shared registry that the service, the store, and the hw census all report
// into. Instrument references returned by counter()/gauge()/histogram() are
// stable for the registry's lifetime; re-requesting the same name+labels
// returns the same instrument.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace lzss::obs {

/// Label set attached to an instrument, e.g. {{"opcode", "compress"}}.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Append @p v to @p out with JSON string escaping (backslash, quote, and
/// control characters). Shared by the JSON renderer and the event log.
void append_json_escaped(std::string& out, std::string_view v);

/// Append @p v to @p out with Prometheus label-value escaping (the exposition
/// format requires `\\`, `\"`, and `\n` inside quoted label values).
void append_prometheus_escaped(std::string& out, std::string_view v);

namespace detail {

/// Stable per-thread shard slot: assigned once per thread, round-robin, so
/// two busy threads almost never share a cache line.
[[nodiscard]] std::size_t shard_slot() noexcept;

inline constexpr std::size_t kShards = 8;

struct alignas(64) CounterShard {
  std::atomic<std::uint64_t> value{0};
};

}  // namespace detail

/// Monotonic counter. add() is one relaxed fetch_add on the caller's shard.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    shards_[detail::shard_slot() % detail::kShards].value.fetch_add(
        n, std::memory_order_relaxed);
  }
  /// Merged total. Concurrent adds may or may not be visible (relaxed), but
  /// the value is exact once writers have quiesced.
  [[nodiscard]] std::uint64_t value() const noexcept {
    std::uint64_t sum = 0;
    for (const auto& s : shards_) sum += s.value.load(std::memory_order_relaxed);
    return sum;
  }

 private:
  std::array<detail::CounterShard, detail::kShards> shards_;
};

/// Last-write-wins signed gauge (queue depth, busy workers, 0/1 flags).
class Gauge {
 public:
  void set(std::int64_t v) noexcept { value_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t n) noexcept { value_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Log-linear histogram over non-negative integer samples (microseconds,
/// bytes, ...). Buckets 0..3 are exact; every later power-of-two octave is
/// split into 4 linear sub-buckets, so a reported bound is at most 25 % above
/// the true value. record() never blocks and never drops a sample.
class Histogram {
 public:
  static constexpr unsigned kSubBits = 2;
  static constexpr unsigned kSub = 1u << kSubBits;          // sub-buckets/octave
  static constexpr unsigned kMaxOctave = 41;                // clamp above 2^41
  static constexpr std::size_t kBuckets = kSub + (kMaxOctave - 1) * kSub;  // 164

  void record(std::uint64_t v) noexcept {
    Shard& s = shards_[detail::shard_slot() % detail::kShards];
    s.counts[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
    s.sum.fetch_add(v, std::memory_order_relaxed);
  }

  /// Attach an exemplar: a concrete traced observation that renders next to
  /// the histogram so a quantile spike links to a span tree. Last-write-wins
  /// (two relaxed stores — a torn pair under contention is acceptable for a
  /// debugging affordance). trace_id must be nonzero to render.
  void record_exemplar(std::uint64_t v, std::uint64_t trace_id) noexcept {
    ex_value_.store(v, std::memory_order_relaxed);
    ex_trace_.store(trace_id, std::memory_order_relaxed);
  }

  /// Shard-merged view; quantiles report the containing bucket's upper bound.
  struct Merged {
    std::array<std::uint64_t, kBuckets> counts{};
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    [[nodiscard]] std::uint64_t quantile(double q) const noexcept;
  };
  [[nodiscard]] Merged merged() const noexcept;

  struct Exemplar {
    std::uint64_t value = 0;
    std::uint64_t trace_id = 0;  ///< 0 = no exemplar recorded yet
  };
  [[nodiscard]] Exemplar exemplar() const noexcept {
    return {ex_value_.load(std::memory_order_relaxed),
            ex_trace_.load(std::memory_order_relaxed)};
  }

  [[nodiscard]] static std::size_t bucket_index(std::uint64_t v) noexcept;
  /// Largest value that lands in bucket @p i (inclusive).
  [[nodiscard]] static std::uint64_t bucket_upper_bound(std::size_t i) noexcept;

 private:
  struct alignas(64) Shard {
    std::array<std::atomic<std::uint64_t>, kBuckets> counts{};
    std::atomic<std::uint64_t> sum{0};
  };
  std::array<Shard, detail::kShards> shards_;
  std::atomic<std::uint64_t> ex_value_{0};
  std::atomic<std::uint64_t> ex_trace_{0};
};

enum class Kind : std::uint8_t { kCounter, kGauge, kHistogram };

/// One scraped sample; histograms carry their merged bucket table.
struct Sample {
  std::string name;
  Labels labels;
  Kind kind = Kind::kCounter;
  std::uint64_t value = 0;   ///< counter total
  std::int64_t gauge = 0;    ///< gauge value
  // Histogram fields (kind == kHistogram). `counts` is trimmed to the last
  // non-empty bucket; pair with Histogram::bucket_upper_bound for edges.
  std::vector<std::uint64_t> counts;
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t p50 = 0;
  std::uint64_t p90 = 0;
  std::uint64_t p99 = 0;
  // Exemplar (histograms only; trace_id == 0 means none).
  std::uint64_t exemplar_value = 0;
  std::uint64_t exemplar_trace_id = 0;
};

/// Point-in-time scrape of a registry: the instrument samples plus whatever
/// the registered collectors appended, in deterministic (sorted) order.
class Snapshot {
 public:
  std::vector<Sample> samples;

  // Collector-side appenders (collectors run inside Registry::snapshot()).
  void add_counter_sample(std::string name, Labels labels, std::uint64_t value);
  void add_gauge_sample(std::string name, Labels labels, std::int64_t value);

  /// Prometheus text exposition (# TYPE lines, histogram _bucket/_sum/_count
  /// series with cumulative le edges).
  [[nodiscard]] std::string to_prometheus() const;
  /// {"metrics":[{"name":...,"labels":{...},"type":...,...}, ...]}
  [[nodiscard]] std::string to_json() const;
  /// Just the [...] array, for embedding in a larger JSON document.
  [[nodiscard]] std::string metrics_json_array() const;

  /// First sample matching @p name (and, when non-empty, a label pair whose
  /// value is @p label_value). nullptr when absent.
  [[nodiscard]] const Sample* find(std::string_view name,
                                   std::string_view label_value = "") const noexcept;
};

/// Named-instrument registry. Instrument getters are idempotent: the same
/// name+labels returns the same instrument; the same name with a different
/// kind throws std::logic_error. References stay valid for the registry's
/// lifetime. All methods are thread-safe.
class Registry {
 public:
  Counter& counter(std::string_view name, const Labels& labels = {});
  Gauge& gauge(std::string_view name, const Labels& labels = {});
  Histogram& histogram(std::string_view name, const Labels& labels = {});

  /// Pull-style source run at snapshot time (queue depths, fault-point
  /// tables, anything not worth a hot-path instrument). Collectors must not
  /// call back into this registry.
  void add_collector(std::function<void(Snapshot&)> fn);

  [[nodiscard]] Snapshot snapshot() const;

 private:
  struct Entry {
    std::string name;
    Labels labels;
    Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  Entry& entry(std::string_view name, const Labels& labels, Kind kind);

  mutable std::mutex mutex_;
  std::map<std::string, Entry> entries_;  ///< keyed by name + serialized labels
  std::vector<std::function<void(Snapshot&)>> collectors_;
};

/// The process-wide default registry (tools that want exactly one).
[[nodiscard]] Registry& default_registry();

}  // namespace lzss::obs
