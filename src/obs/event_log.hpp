// Structured, leveled, rate-limited event log.
//
// Metrics answer "how many"; traces answer "where did this request's time
// go"; events answer "what just happened" — discrete state changes that are
// too rare for a counter to explain and too important to lose: connection
// evictions, brownout transitions, compaction/scrub verdicts, watchdog
// respawns. Each event is one JSON object rendered at emit time into a
// bounded in-memory ring (served by `GET /events`) and, when attached,
// appended to a JSONL file (`lzssd --events-jsonl`).
//
// Emission is mutex'd and allocation-light; events are rare by construction
// (a token bucket per component:event key caps sustained rate, so an
// eviction storm or a flapping brownout can't melt the disk or the ring).
// Dropped events are counted and surfaced on the next admitted event of the
// same key as a `"dropped_prior"` field.
#pragma once

#include <cstdint>
#include <deque>
#include <initializer_list>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include <cstdio>

namespace lzss::obs {

enum class EventLevel : std::uint8_t { kDebug = 0, kInfo, kWarn, kError };

[[nodiscard]] const char* event_level_name(EventLevel level) noexcept;

class EventLog {
 public:
  /// One extra key/value rendered into the event object. `raw` emits the
  /// value unquoted (for numbers); otherwise it is JSON-string-escaped.
  struct Field {
    std::string_view key;
    std::string value;
    bool raw = false;
  };
  static Field num(std::string_view key, std::int64_t v);
  static Field str(std::string_view key, std::string_view v);

  explicit EventLog(std::size_t ring_capacity = 1024);
  ~EventLog();
  EventLog(const EventLog&) = delete;
  EventLog& operator=(const EventLog&) = delete;

  /// Append events to @p path (created if missing). Returns false (and logs
  /// nothing) if the file cannot be opened.
  bool open_jsonl(const std::string& path);

  void set_min_level(EventLevel level) noexcept { min_level_ = level; }
  /// Per component:event sustained admission rate (events/second); bursts up
  /// to 2x the rate are admitted. 0 disables rate limiting.
  void set_rate_limit(std::uint32_t per_key_per_s) noexcept { rate_ = per_key_per_s; }

  void emit(EventLevel level, std::string_view component, std::string_view event,
            std::initializer_list<Field> fields = {});

  /// Most recent ring contents, oldest first (each entry is one JSON line
  /// without the trailing newline).
  [[nodiscard]] std::vector<std::string> recent() const;
  /// Ring contents as one JSONL blob (the `GET /events` body).
  [[nodiscard]] std::string recent_jsonl() const;

  [[nodiscard]] std::uint64_t emitted() const;
  [[nodiscard]] std::uint64_t dropped() const;

 private:
  struct Bucket {
    std::uint64_t window_s = 0;
    std::uint32_t admitted = 0;
    std::uint64_t dropped = 0;
  };

  mutable std::mutex mutex_;
  std::deque<std::string> ring_;
  std::size_t capacity_;
  std::map<std::string, Bucket, std::less<>> buckets_;
  std::FILE* file_ = nullptr;
  EventLevel min_level_ = EventLevel::kDebug;
  std::uint32_t rate_ = 50;
  std::uint64_t emitted_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace lzss::obs
