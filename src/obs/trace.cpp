#include "obs/trace.hpp"

#include <atomic>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <thread>

namespace lzss::obs {

namespace {

void copy_fixed(char* dst, std::size_t cap, const char* src) noexcept {
  std::size_t i = 0;
  for (; src != nullptr && src[i] != '\0' && i + 1 < cap; ++i) dst[i] = src[i];
  dst[i] = '\0';
}

std::uint32_t thread_tag() noexcept {
  return static_cast<std::uint32_t>(
      std::hash<std::thread::id>{}(std::this_thread::get_id()));
}

thread_local TraceContext t_current{};

/// splitmix64: cheap, well-distributed, never maps distinct inputs to the
/// same output — perfect for turning a counter into opaque-looking ids.
std::uint64_t splitmix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t boot_seed() noexcept {
  static const std::uint64_t seed = splitmix64(static_cast<std::uint64_t>(
      std::chrono::system_clock::now().time_since_epoch().count()));
  return seed;
}

}  // namespace

TraceContext current_trace() noexcept { return t_current; }

std::uint64_t next_trace_id() noexcept {
  static std::atomic<std::uint64_t> seq{1};
  const std::uint64_t id =
      splitmix64(boot_seed() ^ seq.fetch_add(1, std::memory_order_relaxed));
  return id != 0 ? id : 1;  // 0 is the "untraced" sentinel
}

std::uint64_t next_span_id() noexcept {
  static std::atomic<std::uint64_t> seq{1};
  return seq.fetch_add(1, std::memory_order_relaxed);
}

TraceScope::TraceScope(TraceContext ctx) noexcept : prev_(t_current) {
  t_current = ctx;
}

TraceScope::~TraceScope() { t_current = prev_; }

TraceRing::TraceRing(std::size_t capacity) : ring_(capacity == 0 ? 1 : capacity) {}

std::uint64_t TraceRing::now_us() noexcept {
  static const auto t0 = std::chrono::steady_clock::now();
  return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::microseconds>(
                                        std::chrono::steady_clock::now() - t0)
                                        .count());
}

std::uint64_t TraceRing::wall_now_us() noexcept {
  return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::microseconds>(
                                        std::chrono::system_clock::now().time_since_epoch())
                                        .count());
}

void TraceRing::record(const TraceEvent& event) {
  const std::lock_guard<std::mutex> lock(mutex_);
  ring_[recorded_ % ring_.size()] = event;
  ++recorded_;
}

std::vector<TraceEvent> TraceRing::events() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<TraceEvent> out;
  const std::size_t n = recorded_ < ring_.size() ? static_cast<std::size_t>(recorded_)
                                                 : ring_.size();
  out.reserve(n);
  const std::uint64_t first = recorded_ - n;
  for (std::size_t i = 0; i < n; ++i) out.push_back(ring_[(first + i) % ring_.size()]);
  return out;
}

std::vector<TraceEvent> TraceRing::events_for(std::uint64_t trace_id) const {
  std::vector<TraceEvent> out;
  for (const TraceEvent& e : events())
    if (e.trace_id == trace_id) out.push_back(e);
  return out;
}

std::size_t TraceRing::copy_trace(std::uint64_t trace_id, TraceRing& dst) const {
  std::size_t copied = 0;
  for (const TraceEvent& e : events_for(trace_id)) {
    dst.record(e);
    ++copied;
  }
  return copied;
}

std::uint64_t TraceRing::recorded() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return recorded_;
}

void append_event_jsonl(std::string& out, const TraceEvent& e) {
  char line[384];
  std::snprintf(line, sizeof(line),
                "{\"name\":\"%s\",\"trace_id\":\"%016" PRIx64 "\",\"span_id\":\"%016" PRIx64
                "\",\"parent_id\":\"%016" PRIx64 "\",\"start_us\":%" PRIu64
                ",\"dur_us\":%" PRIu64 ",\"wall_us\":%" PRIu64
                ",\"tid\":%u,\"tag\":\"%s\",\"a0\":%" PRId64 ",\"a1\":%" PRId64 "}\n",
                e.name, e.trace_id, e.span_id, e.parent_id, e.start_us,
                e.end_us - e.start_us, e.wall_us, e.tid, e.tag, e.a0, e.a1);
  out += line;
}

std::string TraceRing::to_jsonl() const {
  std::string out;
  for (const TraceEvent& e : events()) append_event_jsonl(out, e);
  return out;
}

Span::Span(TraceRing* ring, const char* name) noexcept : ring_(ring), name_(name) {
  if (ring_ == nullptr) return;
  start_us_ = TraceRing::now_us();
  wall_us_ = TraceRing::wall_now_us();
  span_id_ = next_span_id();
  prev_ = t_current;
  t_current = TraceContext{prev_.trace_id, span_id_};
}

void Span::set_tag(const char* tag) noexcept { tag_ = tag != nullptr ? tag : ""; }

Span::~Span() {
  if (ring_ == nullptr) return;
  t_current = prev_;
  TraceEvent e;
  e.trace_id = prev_.trace_id;
  e.span_id = span_id_;
  e.parent_id = prev_.span_id;
  e.start_us = start_us_;
  e.end_us = TraceRing::now_us();
  e.wall_us = wall_us_;
  e.tid = thread_tag();
  copy_fixed(e.name, sizeof(e.name), name_);
  copy_fixed(e.tag, sizeof(e.tag), tag_);
  e.a0 = a0_;
  e.a1 = a1_;
  ring_->record(e);
}

TraceRing& default_trace() {
  static TraceRing* instance = new TraceRing(8192);  // leaked: outlives all users
  return *instance;
}

}  // namespace lzss::obs
