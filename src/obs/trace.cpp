#include "obs/trace.hpp"

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <thread>

namespace lzss::obs {

namespace {

void copy_fixed(char* dst, std::size_t cap, const char* src) noexcept {
  std::size_t i = 0;
  for (; src != nullptr && src[i] != '\0' && i + 1 < cap; ++i) dst[i] = src[i];
  dst[i] = '\0';
}

std::uint32_t thread_tag() noexcept {
  return static_cast<std::uint32_t>(
      std::hash<std::thread::id>{}(std::this_thread::get_id()));
}

}  // namespace

TraceRing::TraceRing(std::size_t capacity) : ring_(capacity == 0 ? 1 : capacity) {}

std::uint64_t TraceRing::now_us() noexcept {
  static const auto t0 = std::chrono::steady_clock::now();
  return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::microseconds>(
                                        std::chrono::steady_clock::now() - t0)
                                        .count());
}

void TraceRing::record(const TraceEvent& event) {
  const std::lock_guard<std::mutex> lock(mutex_);
  ring_[recorded_ % ring_.size()] = event;
  ++recorded_;
}

std::vector<TraceEvent> TraceRing::events() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<TraceEvent> out;
  const std::size_t n = recorded_ < ring_.size() ? static_cast<std::size_t>(recorded_)
                                                 : ring_.size();
  out.reserve(n);
  const std::uint64_t first = recorded_ - n;
  for (std::size_t i = 0; i < n; ++i) out.push_back(ring_[(first + i) % ring_.size()]);
  return out;
}

std::uint64_t TraceRing::recorded() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return recorded_;
}

std::string TraceRing::to_jsonl() const {
  std::string out;
  char line[256];
  for (const TraceEvent& e : events()) {
    std::snprintf(line, sizeof(line),
                  "{\"name\":\"%s\",\"start_us\":%" PRIu64 ",\"dur_us\":%" PRIu64
                  ",\"tid\":%u,\"tag\":\"%s\",\"a0\":%" PRId64 ",\"a1\":%" PRId64 "}\n",
                  e.name, e.start_us, e.end_us - e.start_us, e.tid, e.tag, e.a0, e.a1);
    out += line;
  }
  return out;
}

Span::Span(TraceRing* ring, const char* name) noexcept
    : ring_(ring), name_(name), start_us_(ring != nullptr ? TraceRing::now_us() : 0) {}

void Span::set_tag(const char* tag) noexcept { tag_ = tag != nullptr ? tag : ""; }

Span::~Span() {
  if (ring_ == nullptr) return;
  TraceEvent e;
  e.start_us = start_us_;
  e.end_us = TraceRing::now_us();
  e.tid = thread_tag();
  copy_fixed(e.name, sizeof(e.name), name_);
  copy_fixed(e.tag, sizeof(e.tag), tag_);
  e.a0 = a0_;
  e.a1 = a1_;
  ring_->record(e);
}

TraceRing& default_trace() {
  static TraceRing* instance = new TraceRing(8192);  // leaked: outlives all users
  return *instance;
}

}  // namespace lzss::obs
