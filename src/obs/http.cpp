#include "obs/http.hpp"

#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

namespace lzss::obs {

namespace {

void close_quiet(int fd) noexcept {
  if (fd >= 0) ::close(fd);
}

bool send_all(int fd, const char* data, std::size_t len) noexcept {
  std::size_t sent = 0;
  while (sent < len) {
    const ssize_t n = ::send(fd, data + sent, len - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

HttpSidecar::HttpSidecar(std::uint16_t port) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) throw std::runtime_error("obs::HttpSidecar: socket() failed");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(listen_fd_, 16) != 0) {
    const int err = errno;
    close_quiet(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error(std::string("obs::HttpSidecar: bind/listen failed: ") +
                             std::strerror(err));
  }
  sockaddr_in bound{};
  socklen_t blen = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &blen) == 0)
    port_ = ntohs(bound.sin_port);
  if (::pipe2(wake_pipe_, O_CLOEXEC) != 0) {
    close_quiet(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("obs::HttpSidecar: pipe2() failed");
  }
}

HttpSidecar::~HttpSidecar() {
  stop();
  close_quiet(listen_fd_);
  close_quiet(wake_pipe_[0]);
  close_quiet(wake_pipe_[1]);
}

void HttpSidecar::handle(std::string path, std::string content_type,
                         std::function<std::string()> body) {
  endpoints_.push_back({std::move(path), std::move(content_type), std::move(body)});
}

void HttpSidecar::start() {
  if (running_) return;
  running_ = true;
  thread_ = std::thread([this] { serve_loop(); });
}

void HttpSidecar::stop() noexcept {
  if (!running_) return;
  running_ = false;
  const char b = 'q';
  [[maybe_unused]] const ssize_t n = ::write(wake_pipe_[1], &b, 1);
  if (thread_.joinable()) thread_.join();
}

std::uint64_t HttpSidecar::requests_served() const noexcept {
  return served_.load(std::memory_order_relaxed);
}

void HttpSidecar::serve_loop() {
  while (running_) {
    pollfd fds[2] = {{listen_fd_, POLLIN, 0}, {wake_pipe_[0], POLLIN, 0}};
    const int rc = ::poll(fds, 2, -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return;
    }
    if ((fds[1].revents & POLLIN) != 0) return;  // stop() woke us
    if ((fds[0].revents & POLLIN) == 0) continue;
    const int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_CLOEXEC);
    if (fd < 0) continue;
    // Scrapes are rare and tiny: serve inline on this thread with a short
    // receive timeout so one wedged scraper can't pin the sidecar forever.
    timeval tv{2, 0};
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    serve_one(fd);
    close_quiet(fd);
  }
}

void HttpSidecar::serve_one(int fd) {
  std::string req;
  char buf[1024];
  while (req.size() < 8192 && req.find("\r\n\r\n") == std::string::npos &&
         req.find("\n\n") == std::string::npos) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      if (req.find('\n') != std::string::npos) break;  // request line arrived
      return;
    }
    req.append(buf, static_cast<std::size_t>(n));
  }

  const std::size_t line_end = req.find_first_of("\r\n");
  const std::string line = req.substr(0, line_end);
  std::string status = "404 Not Found";
  std::string content_type = "text/plain; charset=utf-8";
  std::string body = "not found\n";
  if (line.rfind("GET ", 0) != 0) {
    status = "405 Method Not Allowed";
    body = "GET only\n";
  } else {
    const std::size_t path_end = line.find(' ', 4);
    std::string path = line.substr(4, path_end == std::string::npos ? std::string::npos
                                                                    : path_end - 4);
    const std::size_t query = path.find('?');
    if (query != std::string::npos) path.resize(query);
    for (const Endpoint& ep : endpoints_) {
      if (ep.path == path) {
        status = "200 OK";
        content_type = ep.content_type;
        body = ep.body();
        break;
      }
    }
  }

  std::string resp = "HTTP/1.0 " + status +
                     "\r\nContent-Type: " + content_type +
                     "\r\nContent-Length: " + std::to_string(body.size()) +
                     "\r\nConnection: close\r\n\r\n";
  resp += body;
  if (send_all(fd, resp.data(), resp.size())) served_.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace lzss::obs
