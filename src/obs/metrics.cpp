#include "obs/metrics.hpp"

#include <algorithm>
#include <bit>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace lzss::obs {

namespace detail {

std::size_t shard_slot() noexcept {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t slot = next.fetch_add(1, std::memory_order_relaxed);
  return slot;
}

}  // namespace detail

void append_json_escaped(std::string& out, std::string_view v) {
  for (const char c : v) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", static_cast<unsigned char>(c));
          out += buf;
        } else {
          out += c;
        }
        break;
    }
  }
}

void append_prometheus_escaped(std::string& out, std::string_view v) {
  for (const char c : v) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out += c; break;
    }
  }
}

// --- Histogram --------------------------------------------------------------

std::size_t Histogram::bucket_index(std::uint64_t v) noexcept {
  if (v < kSub) return static_cast<std::size_t>(v);  // exact buckets 0..3
  unsigned octave = static_cast<unsigned>(std::bit_width(v)) - 1;  // >= kSubBits
  if (octave > kMaxOctave) {
    octave = kMaxOctave;
    v = (std::uint64_t{1} << (kMaxOctave + 1)) - 1;  // clamp into the top octave
  }
  const std::uint64_t sub = (v - (std::uint64_t{1} << octave)) >> (octave - kSubBits);
  return kSub + static_cast<std::size_t>(octave - kSubBits) * kSub +
         static_cast<std::size_t>(sub);
}

std::uint64_t Histogram::bucket_upper_bound(std::size_t i) noexcept {
  if (i < kSub) return i;
  const unsigned octave = static_cast<unsigned>((i - kSub) / kSub) + kSubBits;
  const std::uint64_t sub = (i - kSub) % kSub;
  const std::uint64_t width = std::uint64_t{1} << (octave - kSubBits);
  return (std::uint64_t{1} << octave) + (sub + 1) * width - 1;
}

Histogram::Merged Histogram::merged() const noexcept {
  Merged m;
  for (const Shard& s : shards_) {
    for (std::size_t i = 0; i < kBuckets; ++i) {
      const std::uint64_t c = s.counts[i].load(std::memory_order_relaxed);
      m.counts[i] += c;
      m.count += c;
    }
    m.sum += s.sum.load(std::memory_order_relaxed);
  }
  return m;
}

std::uint64_t Histogram::Merged::quantile(double q) const noexcept {
  if (count == 0) return 0;
  const double clamped = std::min(std::max(q, 0.0), 1.0);
  std::uint64_t rank = static_cast<std::uint64_t>(std::ceil(clamped * static_cast<double>(count)));
  if (rank == 0) rank = 1;
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    cum += counts[i];
    if (cum >= rank) return bucket_upper_bound(i);
  }
  return bucket_upper_bound(kBuckets - 1);
}

// --- Registry ---------------------------------------------------------------

namespace {

std::string make_key(std::string_view name, const Labels& labels) {
  std::string key(name);
  for (const auto& [k, v] : labels) {
    key += '\x01';
    key += k;
    key += '\x02';
    key += v;
  }
  return key;
}

const char* kind_name(Kind k) noexcept {
  switch (k) {
    case Kind::kCounter: return "counter";
    case Kind::kGauge: return "gauge";
    case Kind::kHistogram: return "histogram";
  }
  return "?";
}

void append_label_set(std::string& out, const Labels& labels) {
  if (labels.empty()) return;
  out += '{';
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ',';
    first = false;
    out += k;
    out += "=\"";
    append_prometheus_escaped(out, v);
    out += '"';
  }
  out += '}';
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  out += buf;
}

void append_i64(std::string& out, std::int64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRId64, v);
  out += buf;
}

}  // namespace

Registry::Entry& Registry::entry(std::string_view name, const Labels& labels, Kind kind) {
  const std::string key = make_key(name, labels);
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    if (it->second.kind != kind)
      throw std::logic_error("obs: metric '" + std::string(name) + "' re-registered as " +
                             kind_name(kind) + " but exists as " +
                             kind_name(it->second.kind));
    return it->second;
  }
  Entry e;
  e.name = std::string(name);
  e.labels = labels;
  e.kind = kind;
  switch (kind) {
    case Kind::kCounter: e.counter = std::make_unique<Counter>(); break;
    case Kind::kGauge: e.gauge = std::make_unique<Gauge>(); break;
    case Kind::kHistogram: e.histogram = std::make_unique<Histogram>(); break;
  }
  return entries_.emplace(key, std::move(e)).first->second;
}

Counter& Registry::counter(std::string_view name, const Labels& labels) {
  return *entry(name, labels, Kind::kCounter).counter;
}

Gauge& Registry::gauge(std::string_view name, const Labels& labels) {
  return *entry(name, labels, Kind::kGauge).gauge;
}

Histogram& Registry::histogram(std::string_view name, const Labels& labels) {
  return *entry(name, labels, Kind::kHistogram).histogram;
}

void Registry::add_collector(std::function<void(Snapshot&)> fn) {
  const std::lock_guard<std::mutex> lock(mutex_);
  collectors_.push_back(std::move(fn));
}

Snapshot Registry::snapshot() const {
  Snapshot out;
  std::vector<std::function<void(Snapshot&)>> collectors;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    // entries_ is a std::map keyed by name+labels, so iteration — and
    // therefore every rendered exposition — is deterministically ordered.
    for (const auto& [key, e] : entries_) {
      Sample s;
      s.name = e.name;
      s.labels = e.labels;
      s.kind = e.kind;
      switch (e.kind) {
        case Kind::kCounter:
          s.value = e.counter->value();
          break;
        case Kind::kGauge:
          s.gauge = e.gauge->value();
          break;
        case Kind::kHistogram: {
          const auto m = e.histogram->merged();
          s.count = m.count;
          s.sum = m.sum;
          s.p50 = m.quantile(0.50);
          s.p90 = m.quantile(0.90);
          s.p99 = m.quantile(0.99);
          std::size_t last = 0;
          for (std::size_t i = 0; i < Histogram::kBuckets; ++i)
            if (m.counts[i] != 0) last = i + 1;
          s.counts.assign(m.counts.begin(),
                          m.counts.begin() + static_cast<std::ptrdiff_t>(last));
          const auto ex = e.histogram->exemplar();
          s.exemplar_value = ex.value;
          s.exemplar_trace_id = ex.trace_id;
          break;
        }
      }
      out.samples.push_back(std::move(s));
    }
    collectors = collectors_;
  }
  for (const auto& fn : collectors) fn(out);
  return out;
}

// --- Snapshot ---------------------------------------------------------------

void Snapshot::add_counter_sample(std::string name, Labels labels, std::uint64_t value) {
  Sample s;
  s.name = std::move(name);
  s.labels = std::move(labels);
  s.kind = Kind::kCounter;
  s.value = value;
  samples.push_back(std::move(s));
}

void Snapshot::add_gauge_sample(std::string name, Labels labels, std::int64_t value) {
  Sample s;
  s.name = std::move(name);
  s.labels = std::move(labels);
  s.kind = Kind::kGauge;
  s.gauge = value;
  samples.push_back(std::move(s));
}

const Sample* Snapshot::find(std::string_view name,
                             std::string_view label_value) const noexcept {
  for (const Sample& s : samples) {
    if (s.name != name) continue;
    if (label_value.empty()) return &s;
    for (const auto& [k, v] : s.labels)
      if (v == label_value) return &s;
  }
  return nullptr;
}

std::string Snapshot::to_prometheus() const {
  // Group samples by metric name (stable, so label order within a name is
  // preserved): the exposition format allows one # TYPE line per family,
  // and collector-added samples may arrive interleaved.
  std::vector<const Sample*> ordered;
  ordered.reserve(samples.size());
  for (const Sample& s : samples) ordered.push_back(&s);
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const Sample* a, const Sample* b) { return a->name < b->name; });

  std::string out;
  std::string_view last_typed;
  for (const Sample* sp : ordered) {
    const Sample& s = *sp;
    if (s.name != last_typed) {
      out += "# TYPE ";
      out += s.name;
      out += ' ';
      out += kind_name(s.kind);
      out += '\n';
      last_typed = s.name;
    }
    if (s.kind == Kind::kHistogram) {
      // Cumulative le-edged buckets; empty buckets are elided to keep the
      // exposition compact (the cumulative counts stay correct regardless).
      std::uint64_t cum = 0;
      for (std::size_t i = 0; i < s.counts.size(); ++i) {
        if (s.counts[i] == 0) continue;
        cum += s.counts[i];
        out += s.name;
        out += "_bucket";
        Labels with_le = s.labels;
        with_le.emplace_back("le", std::to_string(Histogram::bucket_upper_bound(i)));
        append_label_set(out, with_le);
        out += ' ';
        append_u64(out, cum);
        out += '\n';
      }
      out += s.name;
      out += "_bucket";
      Labels inf = s.labels;
      inf.emplace_back("le", "+Inf");
      append_label_set(out, inf);
      out += ' ';
      append_u64(out, s.count);
      if (s.exemplar_trace_id != 0) {
        // OpenMetrics-style exemplar: links this series to a concrete trace
        // retrievable from GET /trace (or /trace/slow).
        char ex[64];
        std::snprintf(ex, sizeof(ex), " # {trace_id=\"%016" PRIx64 "\"} ",
                      s.exemplar_trace_id);
        out += ex;
        append_u64(out, s.exemplar_value);
      }
      out += '\n';
      out += s.name;
      out += "_sum";
      append_label_set(out, s.labels);
      out += ' ';
      append_u64(out, s.sum);
      out += '\n';
      out += s.name;
      out += "_count";
      append_label_set(out, s.labels);
      out += ' ';
      append_u64(out, s.count);
      out += '\n';
    } else {
      out += s.name;
      append_label_set(out, s.labels);
      out += ' ';
      if (s.kind == Kind::kCounter) {
        append_u64(out, s.value);
      } else {
        append_i64(out, s.gauge);
      }
      out += '\n';
    }
  }
  return out;
}

std::string Snapshot::metrics_json_array() const {
  std::string out = "[";
  bool first = true;
  for (const Sample& s : samples) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"";
    append_json_escaped(out, s.name);
    out += "\"";
    if (!s.labels.empty()) {
      out += ",\"labels\":{";
      bool lf = true;
      for (const auto& [k, v] : s.labels) {
        if (!lf) out += ',';
        lf = false;
        out += '"';
        append_json_escaped(out, k);
        out += "\":\"";
        append_json_escaped(out, v);
        out += '"';
      }
      out += '}';
    }
    out += ",\"type\":\"";
    out += kind_name(s.kind);
    out += "\"";
    switch (s.kind) {
      case Kind::kCounter:
        out += ",\"value\":";
        append_u64(out, s.value);
        break;
      case Kind::kGauge:
        out += ",\"value\":";
        append_i64(out, s.gauge);
        break;
      case Kind::kHistogram:
        out += ",\"count\":";
        append_u64(out, s.count);
        out += ",\"sum\":";
        append_u64(out, s.sum);
        out += ",\"p50\":";
        append_u64(out, s.p50);
        out += ",\"p90\":";
        append_u64(out, s.p90);
        out += ",\"p99\":";
        append_u64(out, s.p99);
        if (s.exemplar_trace_id != 0) {
          char ex[96];
          std::snprintf(ex, sizeof(ex),
                        ",\"exemplar\":{\"trace_id\":\"%016" PRIx64 "\",\"value\":%" PRIu64
                        "}",
                        s.exemplar_trace_id, s.exemplar_value);
          out += ex;
        }
        break;
    }
    out += '}';
  }
  out += ']';
  return out;
}

std::string Snapshot::to_json() const {
  return "{\"metrics\":" + metrics_json_array() + "}";
}

Registry& default_registry() {
  static Registry* instance = new Registry();  // leaked: outlives all users
  return *instance;
}

}  // namespace lzss::obs
