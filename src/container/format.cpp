#include "container/format.hpp"

#include <cstring>

namespace lzss::container {

namespace {

void put_le16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_le32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_le64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint32_t get_le32(const std::uint8_t* p) noexcept {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

std::uint64_t get_le64(const std::uint8_t* p) noexcept {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

[[noreturn]] void fail(ContainerError::Kind kind, const std::string& what) {
  throw ContainerError(kind, what);
}

}  // namespace

bool looks_like_container(std::span<const std::uint8_t> bytes) noexcept {
  return bytes.size() >= sizeof(kMagic) && std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) == 0;
}

void append_superframe_header(std::vector<std::uint8_t>& out, std::uint32_t block_size,
                              std::uint32_t block_count, std::uint64_t raw_total) {
  out.reserve(out.size() + kSuperframeHeaderSize);
  for (const std::uint8_t b : kMagic) out.push_back(b);
  out.push_back(kFormatVersion);
  out.push_back(0);
  put_le16(out, 0);
  put_le32(out, block_size);
  put_le32(out, block_count);
  put_le64(out, raw_total);
}

void append_block_header(std::vector<std::uint8_t>& out, Method method, std::uint32_t crc32,
                         std::uint32_t raw_len, std::uint32_t comp_len) {
  out.reserve(out.size() + kBlockHeaderSize);
  put_le32(out, comp_len);
  put_le32(out, raw_len);
  out.push_back(static_cast<std::uint8_t>(method));
  out.push_back(0);
  put_le16(out, 0);
  put_le32(out, crc32);
}

SuperframeView parse(std::span<const std::uint8_t> bytes, std::size_t max_raw_total) {
  if (bytes.size() < kSuperframeHeaderSize)
    fail(ContainerError::Kind::kTruncated, "superframe header truncated");
  if (!looks_like_container(bytes)) fail(ContainerError::Kind::kBadMagic, "bad magic");
  if (bytes[4] != kFormatVersion)
    fail(ContainerError::Kind::kBadVersion,
         "unknown version " + std::to_string(bytes[4]));
  if (bytes[5] != 0 || bytes[6] != 0 || bytes[7] != 0)
    fail(ContainerError::Kind::kBadVersion, "reserved header bytes set");

  SuperframeView view;
  view.block_size = get_le32(bytes.data() + 8);
  const std::uint32_t block_count = get_le32(bytes.data() + 12);
  view.raw_total = get_le64(bytes.data() + 16);

  if (view.raw_total > max_raw_total)
    fail(ContainerError::Kind::kTooLarge,
         "raw_total " + std::to_string(view.raw_total) + " exceeds the cap of " +
             std::to_string(max_raw_total));
  if (block_count == 0) {
    if (view.raw_total != 0)
      fail(ContainerError::Kind::kBadLength, "raw_total without blocks");
    if (bytes.size() != kSuperframeHeaderSize)
      fail(ContainerError::Kind::kTrailingGarbage, "bytes after an empty superframe");
    return view;
  }
  if (view.block_size == 0 || view.block_size > kMaxBlockSize)
    fail(ContainerError::Kind::kBadBlockSize,
         "block_size " + std::to_string(view.block_size));
  // The count must match the fixed split exactly; this also bounds it by
  // raw_total (<= max_raw_total), so a hostile count cannot drive the
  // blocks vector's allocation.
  if (block_count != block_count_for(view.raw_total, view.block_size))
    fail(ContainerError::Kind::kBadLength,
         "block_count inconsistent with raw_total / block_size");

  view.blocks.reserve(block_count);
  std::size_t off = kSuperframeHeaderSize;
  std::uint64_t raw_sum = 0;
  for (std::uint32_t i = 0; i < block_count; ++i) {
    if (bytes.size() - off < kBlockHeaderSize)
      fail(ContainerError::Kind::kTruncated,
           "block " + std::to_string(i) + " header truncated");
    const std::uint8_t* h = bytes.data() + off;
    BlockView block;
    const std::uint32_t comp_len = get_le32(h);
    block.raw_len = get_le32(h + 4);
    if (h[8] > static_cast<std::uint8_t>(Method::kStored))
      fail(ContainerError::Kind::kBadMethod,
           "block " + std::to_string(i) + " method " + std::to_string(h[8]));
    block.method = static_cast<Method>(h[8]);
    if (h[9] != 0 || h[10] != 0 || h[11] != 0)
      fail(ContainerError::Kind::kBadMethod,
           "block " + std::to_string(i) + " reserved bytes set");
    block.crc32 = get_le32(h + 12);

    // Fixed split: every block is exactly block_size except a shorter (but
    // non-empty) final block. This is what makes raw offsets computable up
    // front, so decoded blocks can land in the output concurrently.
    const bool last = i + 1 == block_count;
    if (!last && block.raw_len != view.block_size)
      fail(ContainerError::Kind::kBadLength,
           "block " + std::to_string(i) + " raw_len not block_size");
    if (last && (block.raw_len == 0 || block.raw_len > view.block_size))
      fail(ContainerError::Kind::kBadLength, "final block raw_len out of range");
    if (block.method == Method::kStored && comp_len != block.raw_len)
      fail(ContainerError::Kind::kBadLength,
           "stored block " + std::to_string(i) + " comp_len != raw_len");

    off += kBlockHeaderSize;
    if (bytes.size() - off < comp_len)
      fail(ContainerError::Kind::kTruncated,
           "block " + std::to_string(i) + " payload truncated");
    block.comp = bytes.subspan(off, comp_len);
    block.raw_offset = static_cast<std::size_t>(raw_sum);
    raw_sum += block.raw_len;
    off += comp_len;
    view.blocks.push_back(block);
  }
  if (raw_sum != view.raw_total)
    fail(ContainerError::Kind::kBadLength, "block raw lengths do not sum to raw_total");
  if (off != bytes.size())
    fail(ContainerError::Kind::kTrailingGarbage, "bytes after the last block");
  return view;
}

}  // namespace lzss::container
