// BlockScheduler: fans one request's blocks across a shared worker pool
// without ever depending on that pool for progress.
//
// The deadlock hazard it is built around: the parent request already holds
// a pool worker while its sub-jobs queue on the same bounded queue. If the
// parent *waited* for them, a pool full of parents would starve their own
// children. Instead the blocks live in a claim pool (Fanout): helper jobs
// are enqueued best-effort (a full queue just drops the helper — BUSY
// backpressure per block), every helper drains claims while they last, and
// the parent thread claims blocks too. The parent alone always finishes the
// request; helpers only add parallelism. A helper that dies mid-block
// (kill-fault, watchdog poison) abandons its claim on unwind and the parent
// re-claims it, so a lost worker costs latency, never completeness.
//
// Lifetime: helper closures hold the Fanout by shared_ptr and their own
// copy of the work functor, but the data the work functor references (the
// request payload, the results array) belongs to the parent's stack.
// run_fanout therefore quiesces on every exit path — claims are cancelled
// and in-flight blocks are waited out — so a stale helper dispatched after
// the parent returned finds no claim and never touches freed memory.
#pragma once

#include <cstddef>
#include <cstdint>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "hw/compressor.hpp"

namespace lzss::container {

/// The claim pool + completion latch shared by the parent and its helpers.
class Fanout {
 public:
  explicit Fanout(std::size_t blocks);

  /// Next block to run: abandoned blocks first, then the sequential
  /// counter. nullopt when nothing is claimable (exhausted or cancelled).
  [[nodiscard]] std::optional<std::size_t> claim();
  void complete(std::size_t index);
  /// Unwind path: hands a claimed-but-unfinished block back for re-claim.
  void abandon(std::size_t index);

  [[nodiscard]] bool all_complete() const;
  /// Blocks until progress is possible: a block completed, a block was
  /// abandoned (re-claimable), or the pool was cancelled. Returns
  /// all_complete().
  bool wait_progress();
  /// Stops handing out claims and waits for in-flight ones to land.
  void quiesce();

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::size_t blocks_;
  std::size_t next_ = 0;
  std::size_t completed_ = 0;
  std::size_t in_flight_ = 0;
  bool cancelled_ = false;
  std::vector<std::size_t> retry_;
};

/// Per-block work. @p engine is the executing worker's model instance
/// (null when the caller could not supply one); implementations must not
/// throw — failures are recorded out-of-band (see Service::do_*_blocked).
using BlockWork = std::function<void(std::size_t index, hw::Compressor* engine)>;

/// Hands a helper task to the pool; returns false when the queue refuses
/// (full / stopping). The task runs at most once, with the worker's engine.
using HelperEnqueue = std::function<bool(std::function<void(hw::Compressor&)>)>;

struct FanoutReport {
  std::size_t blocks = 0;
  std::size_t inline_blocks = 0;     ///< run on the calling thread
  std::size_t helper_blocks = 0;     ///< run by pool workers
  std::size_t helpers_enqueued = 0;
  std::size_t helpers_rejected = 0;  ///< BUSY per block: queue had no room
  std::uint64_t reassembly_wait_us = 0;  ///< parent idle, waiting on helpers
};

/// Runs work(i, engine) for every block index in [0, blocks). Enqueues up
/// to max_helpers helper tasks, then claims blocks on the calling thread
/// until all complete. Visits fault point "container.reassemble.delay"
/// before the inline claim loop.
[[nodiscard]] FanoutReport run_fanout(std::size_t blocks, std::size_t max_helpers,
                                      const BlockWork& work, const HelperEnqueue& enqueue,
                                      hw::Compressor* inline_engine);

}  // namespace lzss::container
