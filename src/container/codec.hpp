// BlockCodec: split → compress-per-block → reassemble, and the symmetric
// parallel decode.
//
// The per-block primitives (encode_block / decode_block) are what the
// service's fan-out path runs on worker threads; block_compress /
// block_decompress wrap them with a local thread pool for standalone use
// (tools, benches, tests) so the container round-trips without a server.
//
// Per-block guarantees:
//  * encode_block never fails: when the model path throws, or Deflate would
//    expand the block, it degrades to a stored record — the container-level
//    analogue of the service's stored-container fallback.
//  * decode_block validates the CRC-32 of the raw bytes and inflates with
//    the block's raw_len as a hard output cap, so the existing inflate bomb
//    guard holds per block: a hostile record can never allocate past the
//    length its own header (already validated against block_size) claims.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "container/format.hpp"
#include "hw/compressor.hpp"
#include "hw/config.hpp"
#include "hw/cycle_stats.hpp"

namespace lzss::container {

struct BlockCodecConfig {
  std::size_t block_bytes = 256 * 1024;  ///< split size before the dict clamp
  unsigned threads = 0;                  ///< 0 = hardware concurrency
  hw::HwConfig hw = hw::HwConfig::speed_optimized();
};

struct EncodeReport {
  std::size_t blocks = 0;
  std::size_t stored_blocks = 0;        ///< fallback / incompressible blocks
  std::size_t effective_block_bytes = 0;  ///< after the dictionary clamp
};

/// encode_block's output: the complete block record (header + payload).
struct BlockEncodeResult {
  std::vector<std::uint8_t> record;
  bool stored = false;
  bool census_valid = false;  ///< census only meaningful when the model ran
  hw::CycleStats census{};
};

/// Compresses one raw block into a full LZBC block record. @p reuse is a
/// caller-owned model instance to recycle (a service worker's engine); pass
/// null to construct one ad hoc for @p cfg.
[[nodiscard]] BlockEncodeResult encode_block(const hw::HwConfig& cfg, hw::Compressor* reuse,
                                             std::span<const std::uint8_t> raw);

/// Decodes one parsed block into @p out, which must be exactly raw_len
/// bytes (the caller carves it out of the preallocated output at
/// block.raw_offset — disjoint slices, so blocks decode concurrently).
/// Throws ContainerError (kCrcMismatch / kBadLength) or deflate::InflateError.
/// Fault point "container.block.corrupt" flips bits in the compressed view.
void decode_block(const BlockView& block, std::span<std::uint8_t> out);

/// Splits, compresses each block on a local thread pool, reassembles in
/// order. The block size is clamped up to the dictionary size (the stripe
/// clamp; the report carries the effective value).
[[nodiscard]] std::vector<std::uint8_t> block_compress(std::span<const std::uint8_t> input,
                                                       const BlockCodecConfig& config,
                                                       EncodeReport* report = nullptr);

struct DecodeReport {
  std::size_t blocks = 0;
  std::size_t stored_blocks = 0;
};

/// Parses strictly, then decodes every block (CRC-verified) on a local
/// thread pool. @p max_output caps raw_total (throws kTooLarge beyond it).
[[nodiscard]] std::vector<std::uint8_t> block_decompress(std::span<const std::uint8_t> bytes,
                                                         std::size_t max_output,
                                                         DecodeReport* report = nullptr);

}  // namespace lzss::container
