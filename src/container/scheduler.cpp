#include "container/scheduler.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>

#include "fault/fault.hpp"

namespace lzss::container {

Fanout::Fanout(std::size_t blocks) : blocks_(blocks) {}

std::optional<std::size_t> Fanout::claim() {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (cancelled_) return std::nullopt;
  std::size_t index;
  if (!retry_.empty()) {
    index = retry_.back();
    retry_.pop_back();
  } else if (next_ < blocks_) {
    index = next_++;
  } else {
    return std::nullopt;
  }
  ++in_flight_;
  return index;
}

void Fanout::complete(std::size_t) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    --in_flight_;
    ++completed_;
  }
  cv_.notify_all();
}

void Fanout::abandon(std::size_t index) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    --in_flight_;
    retry_.push_back(index);
  }
  cv_.notify_all();
}

bool Fanout::all_complete() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return completed_ == blocks_;
}

bool Fanout::wait_progress() {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock, [&] { return completed_ == blocks_ || !retry_.empty() || cancelled_; });
  return completed_ == blocks_;
}

void Fanout::quiesce() {
  std::unique_lock<std::mutex> lock(mutex_);
  cancelled_ = true;
  cv_.notify_all();
  cv_.wait(lock, [&] { return in_flight_ == 0; });
}

namespace {

/// Abandons the claim on unwind unless complete() was reached — the hook
/// that makes a kill-fault inside a helper recoverable by the parent.
struct ClaimGuard {
  Fanout* fan;
  std::size_t index;
  bool done = false;
  ~ClaimGuard() {
    if (!done) fan->abandon(index);
  }
  void complete() {
    fan->complete(index);
    done = true;
  }
};

}  // namespace

FanoutReport run_fanout(std::size_t blocks, std::size_t max_helpers, const BlockWork& work,
                        const HelperEnqueue& enqueue, hw::Compressor* inline_engine) {
  FanoutReport report;
  report.blocks = blocks;
  if (blocks == 0) return report;

  auto fan = std::make_shared<Fanout>(blocks);
  auto helper_blocks = std::make_shared<std::atomic<std::size_t>>(0);

  // Every exit path — including an exception out of work() on this thread —
  // must stop helpers from claiming before the caller's stack unwinds.
  struct QuiesceGuard {
    Fanout* fan;
    ~QuiesceGuard() { fan->quiesce(); }
  } quiesce_guard{fan.get()};

  // The parent keeps at least one block for itself: a helper that never
  // runs must not be the difference between done and deadlocked anyway, but
  // there is also no point queueing more helpers than leftover blocks.
  const std::size_t want_helpers = std::min(max_helpers, blocks - 1);
  for (std::size_t h = 0; h < want_helpers; ++h) {
    // Value copies on purpose: the helper may run (or sit queued) after
    // run_fanout returned; `fan` keeps the claim pool alive and `work` is
    // only invoked while quiesce() guarantees its referents are alive.
    const bool accepted = enqueue([fan, helper_blocks, work](hw::Compressor& engine) {
      for (;;) {
        const auto index = fan->claim();
        if (!index) return;
        ClaimGuard guard{fan.get(), *index};
        work(*index, &engine);
        // Count before complete(): the parent reads this counter as soon as
        // the last completion is visible, and complete()'s mutex release is
        // what publishes the increment to it.
        helper_blocks->fetch_add(1, std::memory_order_relaxed);
        guard.complete();
      }
    });
    ++(accepted ? report.helpers_enqueued : report.helpers_rejected);
  }

  // Deterministic hook for tests and chaos: a delay armed here keeps the
  // parent out of the claim pool while the helpers drain it.
  fault::point("container.reassemble.delay");

  for (;;) {
    while (const auto index = fan->claim()) {
      ClaimGuard guard{fan.get(), *index};
      work(*index, inline_engine);
      guard.complete();
      ++report.inline_blocks;
    }
    // Nothing claimable: either done, or helpers hold the rest in flight.
    // wait_progress wakes on completion *and* on abandonment, so a helper
    // killed mid-block hands its claim back and the loop re-claims it.
    const auto wait_start = std::chrono::steady_clock::now();
    const bool done = fan->wait_progress();
    report.reassembly_wait_us += static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - wait_start)
            .count());
    if (done) break;
  }
  report.helper_blocks = helper_blocks->load();
  return report;
}

}  // namespace lzss::container
