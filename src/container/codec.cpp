#include "container/codec.hpp"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <exception>
#include <mutex>
#include <thread>

#include "common/bitio.hpp"
#include "common/checksum.hpp"
#include "deflate/encoder.hpp"
#include "deflate/inflate.hpp"
#include "fault/fault.hpp"
#include "parallel/stripe.hpp"

namespace lzss::container {

namespace {

std::vector<std::uint8_t> stored_record(std::span<const std::uint8_t> raw, std::uint32_t crc) {
  std::vector<std::uint8_t> record;
  record.reserve(kBlockHeaderSize + raw.size());
  append_block_header(record, Method::kStored, crc, static_cast<std::uint32_t>(raw.size()),
                      static_cast<std::uint32_t>(raw.size()));
  record.insert(record.end(), raw.begin(), raw.end());
  return record;
}

}  // namespace

BlockEncodeResult encode_block(const hw::HwConfig& cfg, hw::Compressor* reuse,
                               std::span<const std::uint8_t> raw) {
  BlockEncodeResult out;
  const std::uint32_t crc = checksum::crc32(raw);
  std::vector<std::uint8_t> deflated;
  try {
    std::vector<core::Token> tokens;
    if (reuse != nullptr) {
      auto result = reuse->compress(raw);
      out.census = result.stats;
      tokens = std::move(result.tokens);
    } else {
      hw::Compressor ad_hoc(cfg);
      auto result = ad_hoc.compress(raw);
      out.census = result.stats;
      tokens = std::move(result.tokens);
    }
    out.census_valid = true;
    bits::BitWriter w;
    deflate::write_fixed_block(w, tokens, /*final_block=*/true);
    deflated = w.take();
  } catch (const std::exception&) {
    // Degradation, not error: a stored record always round-trips, so one
    // failing block never fails the whole container.
    out.stored = true;
    out.census_valid = false;
    out.record = stored_record(raw, crc);
    return out;
  }
  if (deflated.size() >= raw.size() && !raw.empty()) {
    // Incompressible: the stored form is never larger than raw + header.
    out.stored = true;
    out.record = stored_record(raw, crc);
    return out;
  }
  out.record.reserve(kBlockHeaderSize + deflated.size());
  append_block_header(out.record, Method::kDeflate, crc,
                      static_cast<std::uint32_t>(raw.size()),
                      static_cast<std::uint32_t>(deflated.size()));
  out.record.insert(out.record.end(), deflated.begin(), deflated.end());
  return out;
}

void decode_block(const BlockView& block, std::span<std::uint8_t> out) {
  if (out.size() != block.raw_len)
    throw ContainerError(ContainerError::Kind::kBadLength,
                         "decode_block output span mismatches raw_len");
  std::vector<std::uint8_t> corrupted;
  std::span<const std::uint8_t> comp = block.comp;
  if (fault::corrupt_into("container.block.corrupt", block.comp, corrupted)) comp = corrupted;

  if (block.method == Method::kStored) {
    if (comp.size() != block.raw_len)
      throw ContainerError(ContainerError::Kind::kBadLength,
                           "stored block length mismatch");
    std::memcpy(out.data(), comp.data(), comp.size());
  } else {
    // raw_len (validated against block_size during parse) is the hard
    // output cap: the per-block inflate bomb guard. A stream that wants
    // more throws InflateBombError before the memory is committed.
    const auto raw = deflate::inflate_raw(comp, block.raw_len);
    if (raw.size() != block.raw_len)
      throw ContainerError(ContainerError::Kind::kBadLength,
                           "block inflated to the wrong length");
    std::memcpy(out.data(), raw.data(), raw.size());
  }
  if (checksum::crc32(out) != block.crc32)
    throw ContainerError(ContainerError::Kind::kCrcMismatch, "block CRC-32 mismatch");
}

std::vector<std::uint8_t> block_compress(std::span<const std::uint8_t> input,
                                         const BlockCodecConfig& config,
                                         EncodeReport* report) {
  const std::size_t block_bytes =
      par::clamp_block_bytes(config.block_bytes, config.hw.dict_size());
  const std::size_t blocks = block_count_for(input.size(), block_bytes);
  std::vector<std::vector<std::uint8_t>> records(blocks);
  std::atomic<std::size_t> stored_blocks{0};

  // Same shape as the multi-engine bank: threads pull block indices off a
  // shared counter; records land by index so order is deterministic.
  std::atomic<std::size_t> next{0};
  std::mutex error_mutex;
  std::exception_ptr first_error;
  auto run = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1);
      if (i >= blocks) return;
      try {
        const std::size_t begin = i * block_bytes;
        const std::size_t len = std::min(block_bytes, input.size() - begin);
        auto result = encode_block(config.hw, nullptr, input.subspan(begin, len));
        if (result.stored) stored_blocks.fetch_add(1);
        records[i] = std::move(result.record);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
        return;
      }
    }
  };

  const unsigned hw_threads = std::max(1u, std::thread::hardware_concurrency());
  const unsigned want = config.threads == 0 ? hw_threads : config.threads;
  const unsigned n_threads =
      static_cast<unsigned>(std::min<std::size_t>(std::max(want, 1u), std::max<std::size_t>(blocks, 1)));
  if (n_threads <= 1) {
    run();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(n_threads);
    for (unsigned t = 0; t < n_threads; ++t) pool.emplace_back(run);
    for (auto& t : pool) t.join();
  }
  if (first_error) std::rethrow_exception(first_error);

  std::size_t total = kSuperframeHeaderSize;
  for (const auto& r : records) total += r.size();
  std::vector<std::uint8_t> out;
  out.reserve(total);
  append_superframe_header(out, static_cast<std::uint32_t>(block_bytes),
                           static_cast<std::uint32_t>(blocks), input.size());
  for (const auto& r : records) out.insert(out.end(), r.begin(), r.end());
  if (report != nullptr) {
    report->blocks = blocks;
    report->stored_blocks = stored_blocks.load();
    report->effective_block_bytes = block_bytes;
  }
  return out;
}

std::vector<std::uint8_t> block_decompress(std::span<const std::uint8_t> bytes,
                                           std::size_t max_output, DecodeReport* report) {
  const SuperframeView view = parse(bytes, max_output);
  std::vector<std::uint8_t> out(static_cast<std::size_t>(view.raw_total));
  std::size_t stored_blocks = 0;
  for (const auto& b : view.blocks)
    if (b.method == Method::kStored) ++stored_blocks;

  std::atomic<std::size_t> next{0};
  std::mutex error_mutex;
  std::exception_ptr first_error;
  std::atomic<bool> failed{false};
  auto run = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1);
      if (i >= view.blocks.size() || failed.load(std::memory_order_relaxed)) return;
      try {
        const BlockView& b = view.blocks[i];
        decode_block(b, std::span<std::uint8_t>(out).subspan(b.raw_offset, b.raw_len));
      } catch (...) {
        failed.store(true, std::memory_order_relaxed);
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
        return;
      }
    }
  };

  const unsigned hw_threads = std::max(1u, std::thread::hardware_concurrency());
  const unsigned n_threads = static_cast<unsigned>(
      std::min<std::size_t>(hw_threads, std::max<std::size_t>(view.blocks.size(), 1)));
  if (n_threads <= 1) {
    run();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(n_threads);
    for (unsigned t = 0; t < n_threads; ++t) pool.emplace_back(run);
    for (auto& t : pool) t.join();
  }
  // All-or-nothing: any failing block rethrows; a damaged container never
  // yields a partial payload.
  if (first_error) std::rethrow_exception(first_error);
  if (report != nullptr) {
    report->blocks = view.blocks.size();
    report->stored_blocks = stored_blocks;
  }
  return out;
}

}  // namespace lzss::container
