// The LZBC block container: the on-wire format for block-parallel payloads.
//
// One large payload is split into fixed-size blocks, each compressed
// independently, so a bank of engines (or a pool of service workers) can
// work on one request concurrently — the Xilinx LZ4 data-compression flow
// and GPULZ both rest on exactly this per-block independence. The container
// is a superframe header followed by the block records in input order:
//
//   superframe header (24 bytes, little-endian)
//   ------------------------------------------
//   0   magic    "LZBC"
//   4   version  (1)
//   5   reserved (0)
//   6   reserved u16 (0)
//   8   block_size  u32   split size; every block but the last is exactly
//                         this long
//   12  block_count u32
//   16  raw_total   u64   sum of the blocks' raw lengths
//
//   block record (16-byte header + comp_len payload bytes)
//   ------------------------------------------------------
//   0   comp_len u32      payload bytes that follow the record header
//   4   raw_len  u32      decompressed length of this block
//   8   method   u8       0 = deflate (one BFINAL Deflate stream),
//                         1 = stored (payload is the raw bytes verbatim)
//   9   reserved (0) x3
//   12  crc32    u32      CRC-32 of the block's RAW bytes
//
// Parsing is strict and fully validated before any block is decoded: bad
// magic/version/method, non-zero reserved bytes, inconsistent lengths,
// truncation and trailing garbage all raise a typed ContainerError — never
// UB, never an allocation driven by an unchecked length. The per-block
// CRC-32 covers the raw bytes, so corruption is pinned to a block and a
// damaged container can never produce a partial-success payload.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace lzss::container {

inline constexpr std::uint8_t kMagic[4] = {'L', 'Z', 'B', 'C'};
inline constexpr std::uint8_t kFormatVersion = 1;
inline constexpr std::size_t kSuperframeHeaderSize = 24;
inline constexpr std::size_t kBlockHeaderSize = 16;
/// Upper bound on block_size: matches the frame protocol's payload cap, so
/// a hostile header can never request a larger split than a frame can carry.
inline constexpr std::uint32_t kMaxBlockSize = 64u * 1024 * 1024;

enum class Method : std::uint8_t {
  kDeflate = 0,  ///< one self-contained Deflate stream (BFINAL set)
  kStored = 1,   ///< raw bytes verbatim (incompressible / fallback blocks)
};

/// Typed parse/decode failure. kTooLarge is the caller-cap violation (maps
/// to the service's TOO_LARGE status); everything else maps to CORRUPT.
class ContainerError : public std::runtime_error {
 public:
  enum class Kind : std::uint8_t {
    kTruncated,        ///< fewer bytes than the headers promise
    kBadMagic,
    kBadVersion,       ///< unknown version or non-zero reserved bytes
    kBadBlockSize,     ///< zero or beyond kMaxBlockSize
    kBadLength,        ///< block lengths inconsistent with the superframe
    kBadMethod,        ///< method byte outside {deflate, stored}
    kCrcMismatch,      ///< a block's raw bytes failed their CRC-32
    kTooLarge,         ///< raw_total exceeds the caller's output cap
    kTrailingGarbage,  ///< bytes after the last block record
  };

  ContainerError(Kind kind, const std::string& what)
      : std::runtime_error("LZBC: " + what), kind_(kind) {}
  [[nodiscard]] Kind kind() const noexcept { return kind_; }

 private:
  Kind kind_;
};

/// One parsed block record; `comp` views into the parsed buffer.
struct BlockView {
  std::span<const std::uint8_t> comp;
  std::uint32_t raw_len = 0;
  std::uint32_t crc32 = 0;
  Method method = Method::kDeflate;
  std::size_t raw_offset = 0;  ///< where this block's bytes land in the output
};

struct SuperframeView {
  std::uint32_t block_size = 0;
  std::uint64_t raw_total = 0;
  std::vector<BlockView> blocks;
};

/// Blocks needed to carry @p raw_size bytes at @p block_size per block.
[[nodiscard]] constexpr std::size_t block_count_for(std::size_t raw_size,
                                                    std::size_t block_size) noexcept {
  return block_size == 0 ? 0 : (raw_size + block_size - 1) / block_size;
}

/// Cheap sniff (magic only) — lets DECOMPRESS route LZBC payloads to the
/// block-parallel path and everything else to the single-shot inflater.
[[nodiscard]] bool looks_like_container(std::span<const std::uint8_t> bytes) noexcept;

void append_superframe_header(std::vector<std::uint8_t>& out, std::uint32_t block_size,
                              std::uint32_t block_count, std::uint64_t raw_total);
void append_block_header(std::vector<std::uint8_t>& out, Method method, std::uint32_t crc32,
                         std::uint32_t raw_len, std::uint32_t comp_len);

/// Strict full-container validation. Every structural invariant is checked
/// here — length arithmetic, method bytes, the raw_total cross-check —
/// before any block payload is touched; @p max_raw_total bounds the total
/// decompressed size (the inflate-bomb analogue for the superframe, throws
/// kTooLarge). Block payload CRCs are verified later, during decode.
[[nodiscard]] SuperframeView parse(std::span<const std::uint8_t> bytes,
                                   std::size_t max_raw_total);

}  // namespace lzss::container
