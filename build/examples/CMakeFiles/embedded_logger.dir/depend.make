# Empty dependencies file for embedded_logger.
# This may be replaced when dependencies are built.
