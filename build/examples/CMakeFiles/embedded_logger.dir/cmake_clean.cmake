file(REMOVE_RECURSE
  "CMakeFiles/embedded_logger.dir/embedded_logger.cpp.o"
  "CMakeFiles/embedded_logger.dir/embedded_logger.cpp.o.d"
  "embedded_logger"
  "embedded_logger.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/embedded_logger.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
