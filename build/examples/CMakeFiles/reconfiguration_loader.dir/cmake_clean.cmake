file(REMOVE_RECURSE
  "CMakeFiles/reconfiguration_loader.dir/reconfiguration_loader.cpp.o"
  "CMakeFiles/reconfiguration_loader.dir/reconfiguration_loader.cpp.o.d"
  "reconfiguration_loader"
  "reconfiguration_loader.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reconfiguration_loader.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
