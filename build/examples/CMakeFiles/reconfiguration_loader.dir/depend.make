# Empty dependencies file for reconfiguration_loader.
# This may be replaced when dependencies are built.
