file(REMOVE_RECURSE
  "CMakeFiles/zlib_interop.dir/zlib_interop.cpp.o"
  "CMakeFiles/zlib_interop.dir/zlib_interop.cpp.o.d"
  "zlib_interop"
  "zlib_interop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zlib_interop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
