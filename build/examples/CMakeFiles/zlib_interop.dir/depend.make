# Empty dependencies file for zlib_interop.
# This may be replaced when dependencies are built.
