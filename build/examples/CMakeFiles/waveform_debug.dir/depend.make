# Empty dependencies file for waveform_debug.
# This may be replaced when dependencies are built.
