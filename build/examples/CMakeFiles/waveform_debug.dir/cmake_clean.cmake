file(REMOVE_RECURSE
  "CMakeFiles/waveform_debug.dir/waveform_debug.cpp.o"
  "CMakeFiles/waveform_debug.dir/waveform_debug.cpp.o.d"
  "waveform_debug"
  "waveform_debug.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/waveform_debug.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
