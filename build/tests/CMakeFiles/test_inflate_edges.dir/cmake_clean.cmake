file(REMOVE_RECURSE
  "CMakeFiles/test_inflate_edges.dir/test_inflate_edges.cpp.o"
  "CMakeFiles/test_inflate_edges.dir/test_inflate_edges.cpp.o.d"
  "test_inflate_edges"
  "test_inflate_edges.pdb"
  "test_inflate_edges[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_inflate_edges.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
