# Empty compiler generated dependencies file for test_inflate_edges.
# This may be replaced when dependencies are built.
