file(REMOVE_RECURSE
  "CMakeFiles/test_hw_invariants.dir/test_hw_invariants.cpp.o"
  "CMakeFiles/test_hw_invariants.dir/test_hw_invariants.cpp.o.d"
  "test_hw_invariants"
  "test_hw_invariants.pdb"
  "test_hw_invariants[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hw_invariants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
