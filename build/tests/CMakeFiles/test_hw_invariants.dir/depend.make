# Empty dependencies file for test_hw_invariants.
# This may be replaced when dependencies are built.
