# Empty dependencies file for test_stream_compressor.
# This may be replaced when dependencies are built.
