file(REMOVE_RECURSE
  "CMakeFiles/test_stream_compressor.dir/test_stream_compressor.cpp.o"
  "CMakeFiles/test_stream_compressor.dir/test_stream_compressor.cpp.o.d"
  "test_stream_compressor"
  "test_stream_compressor.pdb"
  "test_stream_compressor[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stream_compressor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
