# Empty compiler generated dependencies file for test_rtl_gen.
# This may be replaced when dependencies are built.
