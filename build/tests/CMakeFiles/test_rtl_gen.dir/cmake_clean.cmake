file(REMOVE_RECURSE
  "CMakeFiles/test_rtl_gen.dir/test_rtl_gen.cpp.o"
  "CMakeFiles/test_rtl_gen.dir/test_rtl_gen.cpp.o.d"
  "test_rtl_gen"
  "test_rtl_gen.pdb"
  "test_rtl_gen[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rtl_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
