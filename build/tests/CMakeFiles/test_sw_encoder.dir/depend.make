# Empty dependencies file for test_sw_encoder.
# This may be replaced when dependencies are built.
