file(REMOVE_RECURSE
  "CMakeFiles/test_sw_encoder.dir/test_sw_encoder.cpp.o"
  "CMakeFiles/test_sw_encoder.dir/test_sw_encoder.cpp.o.d"
  "test_sw_encoder"
  "test_sw_encoder.pdb"
  "test_sw_encoder[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sw_encoder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
