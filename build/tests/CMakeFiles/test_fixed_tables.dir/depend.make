# Empty dependencies file for test_fixed_tables.
# This may be replaced when dependencies are built.
