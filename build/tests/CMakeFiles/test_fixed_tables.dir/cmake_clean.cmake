file(REMOVE_RECURSE
  "CMakeFiles/test_fixed_tables.dir/test_fixed_tables.cpp.o"
  "CMakeFiles/test_fixed_tables.dir/test_fixed_tables.cpp.o.d"
  "test_fixed_tables"
  "test_fixed_tables.pdb"
  "test_fixed_tables[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fixed_tables.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
