# Empty dependencies file for test_incremental_encoder.
# This may be replaced when dependencies are built.
