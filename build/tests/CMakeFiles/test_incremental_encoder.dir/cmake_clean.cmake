file(REMOVE_RECURSE
  "CMakeFiles/test_incremental_encoder.dir/test_incremental_encoder.cpp.o"
  "CMakeFiles/test_incremental_encoder.dir/test_incremental_encoder.cpp.o.d"
  "test_incremental_encoder"
  "test_incremental_encoder.pdb"
  "test_incremental_encoder[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_incremental_encoder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
