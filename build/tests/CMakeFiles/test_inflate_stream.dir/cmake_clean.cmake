file(REMOVE_RECURSE
  "CMakeFiles/test_inflate_stream.dir/test_inflate_stream.cpp.o"
  "CMakeFiles/test_inflate_stream.dir/test_inflate_stream.cpp.o.d"
  "test_inflate_stream"
  "test_inflate_stream.pdb"
  "test_inflate_stream[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_inflate_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
