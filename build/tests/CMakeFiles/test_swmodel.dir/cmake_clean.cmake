file(REMOVE_RECURSE
  "CMakeFiles/test_swmodel.dir/test_swmodel.cpp.o"
  "CMakeFiles/test_swmodel.dir/test_swmodel.cpp.o.d"
  "test_swmodel"
  "test_swmodel.pdb"
  "test_swmodel[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_swmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
