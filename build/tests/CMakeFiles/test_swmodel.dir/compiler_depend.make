# Empty compiler generated dependencies file for test_swmodel.
# This may be replaced when dependencies are built.
