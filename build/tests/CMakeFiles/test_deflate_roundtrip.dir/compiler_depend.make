# Empty compiler generated dependencies file for test_deflate_roundtrip.
# This may be replaced when dependencies are built.
