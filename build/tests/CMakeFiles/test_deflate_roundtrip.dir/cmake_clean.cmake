file(REMOVE_RECURSE
  "CMakeFiles/test_deflate_roundtrip.dir/test_deflate_roundtrip.cpp.o"
  "CMakeFiles/test_deflate_roundtrip.dir/test_deflate_roundtrip.cpp.o.d"
  "test_deflate_roundtrip"
  "test_deflate_roundtrip.pdb"
  "test_deflate_roundtrip[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_deflate_roundtrip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
