
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_raw_container.cpp" "tests/CMakeFiles/test_raw_container.dir/test_raw_container.cpp.o" "gcc" "tests/CMakeFiles/test_raw_container.dir/test_raw_container.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/lzss_common.dir/DependInfo.cmake"
  "/root/repo/build/src/bram/CMakeFiles/lzss_bram.dir/DependInfo.cmake"
  "/root/repo/build/src/stream/CMakeFiles/lzss_stream.dir/DependInfo.cmake"
  "/root/repo/build/src/lzss/CMakeFiles/lzss_core.dir/DependInfo.cmake"
  "/root/repo/build/src/deflate/CMakeFiles/lzss_deflate.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/lzss_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/fpga/CMakeFiles/lzss_fpga.dir/DependInfo.cmake"
  "/root/repo/build/src/swmodel/CMakeFiles/lzss_swmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/estimator/CMakeFiles/lzss_estimator.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/lzss_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/lzss_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/rtl/CMakeFiles/lzss_rtl.dir/DependInfo.cmake"
  "/root/repo/build/src/logger/CMakeFiles/lzss_logger.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
