# Empty compiler generated dependencies file for test_raw_container.
# This may be replaced when dependencies are built.
