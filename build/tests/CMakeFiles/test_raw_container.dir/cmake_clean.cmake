file(REMOVE_RECURSE
  "CMakeFiles/test_raw_container.dir/test_raw_container.cpp.o"
  "CMakeFiles/test_raw_container.dir/test_raw_container.cpp.o.d"
  "test_raw_container"
  "test_raw_container.pdb"
  "test_raw_container[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_raw_container.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
