# Empty dependencies file for test_hw_ablations.
# This may be replaced when dependencies are built.
