file(REMOVE_RECURSE
  "CMakeFiles/test_hw_ablations.dir/test_hw_ablations.cpp.o"
  "CMakeFiles/test_hw_ablations.dir/test_hw_ablations.cpp.o.d"
  "test_hw_ablations"
  "test_hw_ablations.pdb"
  "test_hw_ablations[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hw_ablations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
