file(REMOVE_RECURSE
  "CMakeFiles/test_vcd_trace.dir/test_vcd_trace.cpp.o"
  "CMakeFiles/test_vcd_trace.dir/test_vcd_trace.cpp.o.d"
  "test_vcd_trace"
  "test_vcd_trace.pdb"
  "test_vcd_trace[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vcd_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
