# Empty dependencies file for test_vcd_trace.
# This may be replaced when dependencies are built.
