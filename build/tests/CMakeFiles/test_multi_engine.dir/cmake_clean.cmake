file(REMOVE_RECURSE
  "CMakeFiles/test_multi_engine.dir/test_multi_engine.cpp.o"
  "CMakeFiles/test_multi_engine.dir/test_multi_engine.cpp.o.d"
  "test_multi_engine"
  "test_multi_engine.pdb"
  "test_multi_engine[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_multi_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
