file(REMOVE_RECURSE
  "CMakeFiles/test_bram.dir/test_bram.cpp.o"
  "CMakeFiles/test_bram.dir/test_bram.cpp.o.d"
  "test_bram"
  "test_bram.pdb"
  "test_bram[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
