# Empty compiler generated dependencies file for test_bram.
# This may be replaced when dependencies are built.
