# Empty compiler generated dependencies file for test_huffman_stage.
# This may be replaced when dependencies are built.
