file(REMOVE_RECURSE
  "CMakeFiles/test_huffman_stage.dir/test_huffman_stage.cpp.o"
  "CMakeFiles/test_huffman_stage.dir/test_huffman_stage.cpp.o.d"
  "test_huffman_stage"
  "test_huffman_stage.pdb"
  "test_huffman_stage[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_huffman_stage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
