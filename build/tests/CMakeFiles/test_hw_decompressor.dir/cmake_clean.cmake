file(REMOVE_RECURSE
  "CMakeFiles/test_hw_decompressor.dir/test_hw_decompressor.cpp.o"
  "CMakeFiles/test_hw_decompressor.dir/test_hw_decompressor.cpp.o.d"
  "test_hw_decompressor"
  "test_hw_decompressor.pdb"
  "test_hw_decompressor[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hw_decompressor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
