# Empty dependencies file for test_hw_decompressor.
# This may be replaced when dependencies are built.
