# Empty dependencies file for test_hw_compressor.
# This may be replaced when dependencies are built.
