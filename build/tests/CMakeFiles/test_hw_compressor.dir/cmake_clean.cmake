file(REMOVE_RECURSE
  "CMakeFiles/test_hw_compressor.dir/test_hw_compressor.cpp.o"
  "CMakeFiles/test_hw_compressor.dir/test_hw_compressor.cpp.o.d"
  "test_hw_compressor"
  "test_hw_compressor.pdb"
  "test_hw_compressor[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hw_compressor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
