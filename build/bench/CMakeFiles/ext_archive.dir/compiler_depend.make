# Empty compiler generated dependencies file for ext_archive.
# This may be replaced when dependencies are built.
