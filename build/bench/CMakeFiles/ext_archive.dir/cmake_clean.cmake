file(REMOVE_RECURSE
  "CMakeFiles/ext_archive.dir/ext_archive.cpp.o"
  "CMakeFiles/ext_archive.dir/ext_archive.cpp.o.d"
  "ext_archive"
  "ext_archive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_archive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
