# Empty compiler generated dependencies file for ablation_hash_function.
# This may be replaced when dependencies are built.
