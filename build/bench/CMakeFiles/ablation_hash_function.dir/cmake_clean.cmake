file(REMOVE_RECURSE
  "CMakeFiles/ablation_hash_function.dir/ablation_hash_function.cpp.o"
  "CMakeFiles/ablation_hash_function.dir/ablation_hash_function.cpp.o.d"
  "ablation_hash_function"
  "ablation_hash_function.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_hash_function.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
