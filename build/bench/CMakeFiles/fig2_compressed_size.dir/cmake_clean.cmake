file(REMOVE_RECURSE
  "CMakeFiles/fig2_compressed_size.dir/fig2_compressed_size.cpp.o"
  "CMakeFiles/fig2_compressed_size.dir/fig2_compressed_size.cpp.o.d"
  "fig2_compressed_size"
  "fig2_compressed_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_compressed_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
