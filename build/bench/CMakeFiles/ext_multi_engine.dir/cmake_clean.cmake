file(REMOVE_RECURSE
  "CMakeFiles/ext_multi_engine.dir/ext_multi_engine.cpp.o"
  "CMakeFiles/ext_multi_engine.dir/ext_multi_engine.cpp.o.d"
  "ext_multi_engine"
  "ext_multi_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_multi_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
