# Empty dependencies file for ext_multi_engine.
# This may be replaced when dependencies are built.
