# Empty compiler generated dependencies file for fig3_speed.
# This may be replaced when dependencies are built.
