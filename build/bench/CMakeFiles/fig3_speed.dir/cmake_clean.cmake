file(REMOVE_RECURSE
  "CMakeFiles/fig3_speed.dir/fig3_speed.cpp.o"
  "CMakeFiles/fig3_speed.dir/fig3_speed.cpp.o.d"
  "fig3_speed"
  "fig3_speed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_speed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
