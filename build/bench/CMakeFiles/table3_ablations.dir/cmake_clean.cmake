file(REMOVE_RECURSE
  "CMakeFiles/table3_ablations.dir/table3_ablations.cpp.o"
  "CMakeFiles/table3_ablations.dir/table3_ablations.cpp.o.d"
  "table3_ablations"
  "table3_ablations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_ablations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
