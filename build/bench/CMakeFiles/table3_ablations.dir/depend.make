# Empty dependencies file for table3_ablations.
# This may be replaced when dependencies are built.
