# Empty compiler generated dependencies file for table2_utilization.
# This may be replaced when dependencies are built.
