file(REMOVE_RECURSE
  "CMakeFiles/table2_utilization.dir/table2_utilization.cpp.o"
  "CMakeFiles/table2_utilization.dir/table2_utilization.cpp.o.d"
  "table2_utilization"
  "table2_utilization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_utilization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
