# Empty dependencies file for fig5_state_distribution.
# This may be replaced when dependencies are built.
