file(REMOVE_RECURSE
  "CMakeFiles/fig4_levels.dir/fig4_levels.cpp.o"
  "CMakeFiles/fig4_levels.dir/fig4_levels.cpp.o.d"
  "fig4_levels"
  "fig4_levels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_levels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
