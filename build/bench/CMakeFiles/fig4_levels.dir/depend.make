# Empty dependencies file for fig4_levels.
# This may be replaced when dependencies are built.
