file(REMOVE_RECURSE
  "CMakeFiles/ext_decompression.dir/ext_decompression.cpp.o"
  "CMakeFiles/ext_decompression.dir/ext_decompression.cpp.o.d"
  "ext_decompression"
  "ext_decompression.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_decompression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
