file(REMOVE_RECURSE
  "CMakeFiles/lzss_genrtl.dir/lzss_genrtl.cpp.o"
  "CMakeFiles/lzss_genrtl.dir/lzss_genrtl.cpp.o.d"
  "lzss_genrtl"
  "lzss_genrtl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lzss_genrtl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
