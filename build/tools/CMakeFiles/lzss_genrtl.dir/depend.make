# Empty dependencies file for lzss_genrtl.
# This may be replaced when dependencies are built.
