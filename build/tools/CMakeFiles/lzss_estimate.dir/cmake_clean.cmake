file(REMOVE_RECURSE
  "CMakeFiles/lzss_estimate.dir/lzss_estimate.cpp.o"
  "CMakeFiles/lzss_estimate.dir/lzss_estimate.cpp.o.d"
  "lzss_estimate"
  "lzss_estimate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lzss_estimate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
