# Empty dependencies file for lzss_estimate.
# This may be replaced when dependencies are built.
