# Empty dependencies file for lzsszip.
# This may be replaced when dependencies are built.
