file(REMOVE_RECURSE
  "CMakeFiles/lzsszip.dir/lzsszip.cpp.o"
  "CMakeFiles/lzsszip.dir/lzsszip.cpp.o.d"
  "lzsszip"
  "lzsszip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lzsszip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
