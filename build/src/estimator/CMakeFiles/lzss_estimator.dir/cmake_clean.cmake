file(REMOVE_RECURSE
  "CMakeFiles/lzss_estimator.dir/analysis.cpp.o"
  "CMakeFiles/lzss_estimator.dir/analysis.cpp.o.d"
  "CMakeFiles/lzss_estimator.dir/evaluate.cpp.o"
  "CMakeFiles/lzss_estimator.dir/evaluate.cpp.o.d"
  "CMakeFiles/lzss_estimator.dir/pareto.cpp.o"
  "CMakeFiles/lzss_estimator.dir/pareto.cpp.o.d"
  "CMakeFiles/lzss_estimator.dir/presets.cpp.o"
  "CMakeFiles/lzss_estimator.dir/presets.cpp.o.d"
  "CMakeFiles/lzss_estimator.dir/report.cpp.o"
  "CMakeFiles/lzss_estimator.dir/report.cpp.o.d"
  "CMakeFiles/lzss_estimator.dir/sweep.cpp.o"
  "CMakeFiles/lzss_estimator.dir/sweep.cpp.o.d"
  "liblzss_estimator.a"
  "liblzss_estimator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lzss_estimator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
