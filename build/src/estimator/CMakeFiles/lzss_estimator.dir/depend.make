# Empty dependencies file for lzss_estimator.
# This may be replaced when dependencies are built.
