file(REMOVE_RECURSE
  "liblzss_estimator.a"
)
