
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/deflate/container.cpp" "src/deflate/CMakeFiles/lzss_deflate.dir/container.cpp.o" "gcc" "src/deflate/CMakeFiles/lzss_deflate.dir/container.cpp.o.d"
  "/root/repo/src/deflate/dynamic_encoder.cpp" "src/deflate/CMakeFiles/lzss_deflate.dir/dynamic_encoder.cpp.o" "gcc" "src/deflate/CMakeFiles/lzss_deflate.dir/dynamic_encoder.cpp.o.d"
  "/root/repo/src/deflate/encoder.cpp" "src/deflate/CMakeFiles/lzss_deflate.dir/encoder.cpp.o" "gcc" "src/deflate/CMakeFiles/lzss_deflate.dir/encoder.cpp.o.d"
  "/root/repo/src/deflate/fixed_tables.cpp" "src/deflate/CMakeFiles/lzss_deflate.dir/fixed_tables.cpp.o" "gcc" "src/deflate/CMakeFiles/lzss_deflate.dir/fixed_tables.cpp.o.d"
  "/root/repo/src/deflate/huffman.cpp" "src/deflate/CMakeFiles/lzss_deflate.dir/huffman.cpp.o" "gcc" "src/deflate/CMakeFiles/lzss_deflate.dir/huffman.cpp.o.d"
  "/root/repo/src/deflate/inflate.cpp" "src/deflate/CMakeFiles/lzss_deflate.dir/inflate.cpp.o" "gcc" "src/deflate/CMakeFiles/lzss_deflate.dir/inflate.cpp.o.d"
  "/root/repo/src/deflate/inflate_stream.cpp" "src/deflate/CMakeFiles/lzss_deflate.dir/inflate_stream.cpp.o" "gcc" "src/deflate/CMakeFiles/lzss_deflate.dir/inflate_stream.cpp.o.d"
  "/root/repo/src/deflate/stream_compressor.cpp" "src/deflate/CMakeFiles/lzss_deflate.dir/stream_compressor.cpp.o" "gcc" "src/deflate/CMakeFiles/lzss_deflate.dir/stream_compressor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/lzss_common.dir/DependInfo.cmake"
  "/root/repo/build/src/lzss/CMakeFiles/lzss_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
