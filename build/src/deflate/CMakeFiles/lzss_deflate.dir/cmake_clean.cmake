file(REMOVE_RECURSE
  "CMakeFiles/lzss_deflate.dir/container.cpp.o"
  "CMakeFiles/lzss_deflate.dir/container.cpp.o.d"
  "CMakeFiles/lzss_deflate.dir/dynamic_encoder.cpp.o"
  "CMakeFiles/lzss_deflate.dir/dynamic_encoder.cpp.o.d"
  "CMakeFiles/lzss_deflate.dir/encoder.cpp.o"
  "CMakeFiles/lzss_deflate.dir/encoder.cpp.o.d"
  "CMakeFiles/lzss_deflate.dir/fixed_tables.cpp.o"
  "CMakeFiles/lzss_deflate.dir/fixed_tables.cpp.o.d"
  "CMakeFiles/lzss_deflate.dir/huffman.cpp.o"
  "CMakeFiles/lzss_deflate.dir/huffman.cpp.o.d"
  "CMakeFiles/lzss_deflate.dir/inflate.cpp.o"
  "CMakeFiles/lzss_deflate.dir/inflate.cpp.o.d"
  "CMakeFiles/lzss_deflate.dir/inflate_stream.cpp.o"
  "CMakeFiles/lzss_deflate.dir/inflate_stream.cpp.o.d"
  "CMakeFiles/lzss_deflate.dir/stream_compressor.cpp.o"
  "CMakeFiles/lzss_deflate.dir/stream_compressor.cpp.o.d"
  "liblzss_deflate.a"
  "liblzss_deflate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lzss_deflate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
