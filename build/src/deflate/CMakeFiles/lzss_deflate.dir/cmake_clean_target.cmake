file(REMOVE_RECURSE
  "liblzss_deflate.a"
)
