# Empty dependencies file for lzss_deflate.
# This may be replaced when dependencies are built.
