# Empty dependencies file for lzss_parallel.
# This may be replaced when dependencies are built.
