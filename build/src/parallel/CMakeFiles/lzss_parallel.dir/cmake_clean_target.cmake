file(REMOVE_RECURSE
  "liblzss_parallel.a"
)
