file(REMOVE_RECURSE
  "CMakeFiles/lzss_parallel.dir/multi_engine.cpp.o"
  "CMakeFiles/lzss_parallel.dir/multi_engine.cpp.o.d"
  "liblzss_parallel.a"
  "liblzss_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lzss_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
