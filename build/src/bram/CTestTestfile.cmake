# CMake generated Testfile for 
# Source directory: /root/repo/src/bram
# Build directory: /root/repo/build/src/bram
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
