# Empty compiler generated dependencies file for lzss_bram.
# This may be replaced when dependencies are built.
