
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bram/dual_port_ram.cpp" "src/bram/CMakeFiles/lzss_bram.dir/dual_port_ram.cpp.o" "gcc" "src/bram/CMakeFiles/lzss_bram.dir/dual_port_ram.cpp.o.d"
  "/root/repo/src/bram/geometry.cpp" "src/bram/CMakeFiles/lzss_bram.dir/geometry.cpp.o" "gcc" "src/bram/CMakeFiles/lzss_bram.dir/geometry.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/lzss_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
