file(REMOVE_RECURSE
  "liblzss_bram.a"
)
