file(REMOVE_RECURSE
  "CMakeFiles/lzss_bram.dir/dual_port_ram.cpp.o"
  "CMakeFiles/lzss_bram.dir/dual_port_ram.cpp.o.d"
  "CMakeFiles/lzss_bram.dir/geometry.cpp.o"
  "CMakeFiles/lzss_bram.dir/geometry.cpp.o.d"
  "liblzss_bram.a"
  "liblzss_bram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lzss_bram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
