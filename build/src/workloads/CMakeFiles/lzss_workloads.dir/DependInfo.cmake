
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/bitstream_gen.cpp" "src/workloads/CMakeFiles/lzss_workloads.dir/bitstream_gen.cpp.o" "gcc" "src/workloads/CMakeFiles/lzss_workloads.dir/bitstream_gen.cpp.o.d"
  "/root/repo/src/workloads/can_gen.cpp" "src/workloads/CMakeFiles/lzss_workloads.dir/can_gen.cpp.o" "gcc" "src/workloads/CMakeFiles/lzss_workloads.dir/can_gen.cpp.o.d"
  "/root/repo/src/workloads/corpus.cpp" "src/workloads/CMakeFiles/lzss_workloads.dir/corpus.cpp.o" "gcc" "src/workloads/CMakeFiles/lzss_workloads.dir/corpus.cpp.o.d"
  "/root/repo/src/workloads/net_gen.cpp" "src/workloads/CMakeFiles/lzss_workloads.dir/net_gen.cpp.o" "gcc" "src/workloads/CMakeFiles/lzss_workloads.dir/net_gen.cpp.o.d"
  "/root/repo/src/workloads/patterns.cpp" "src/workloads/CMakeFiles/lzss_workloads.dir/patterns.cpp.o" "gcc" "src/workloads/CMakeFiles/lzss_workloads.dir/patterns.cpp.o.d"
  "/root/repo/src/workloads/text_gen.cpp" "src/workloads/CMakeFiles/lzss_workloads.dir/text_gen.cpp.o" "gcc" "src/workloads/CMakeFiles/lzss_workloads.dir/text_gen.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/lzss_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
