file(REMOVE_RECURSE
  "CMakeFiles/lzss_workloads.dir/bitstream_gen.cpp.o"
  "CMakeFiles/lzss_workloads.dir/bitstream_gen.cpp.o.d"
  "CMakeFiles/lzss_workloads.dir/can_gen.cpp.o"
  "CMakeFiles/lzss_workloads.dir/can_gen.cpp.o.d"
  "CMakeFiles/lzss_workloads.dir/corpus.cpp.o"
  "CMakeFiles/lzss_workloads.dir/corpus.cpp.o.d"
  "CMakeFiles/lzss_workloads.dir/net_gen.cpp.o"
  "CMakeFiles/lzss_workloads.dir/net_gen.cpp.o.d"
  "CMakeFiles/lzss_workloads.dir/patterns.cpp.o"
  "CMakeFiles/lzss_workloads.dir/patterns.cpp.o.d"
  "CMakeFiles/lzss_workloads.dir/text_gen.cpp.o"
  "CMakeFiles/lzss_workloads.dir/text_gen.cpp.o.d"
  "liblzss_workloads.a"
  "liblzss_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lzss_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
