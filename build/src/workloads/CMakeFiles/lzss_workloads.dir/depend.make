# Empty dependencies file for lzss_workloads.
# This may be replaced when dependencies are built.
