file(REMOVE_RECURSE
  "liblzss_workloads.a"
)
