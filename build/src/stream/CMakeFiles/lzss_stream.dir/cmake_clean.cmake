file(REMOVE_RECURSE
  "CMakeFiles/lzss_stream.dir/dma.cpp.o"
  "CMakeFiles/lzss_stream.dir/dma.cpp.o.d"
  "CMakeFiles/lzss_stream.dir/word_packer.cpp.o"
  "CMakeFiles/lzss_stream.dir/word_packer.cpp.o.d"
  "liblzss_stream.a"
  "liblzss_stream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lzss_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
