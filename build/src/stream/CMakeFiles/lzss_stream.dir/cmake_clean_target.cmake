file(REMOVE_RECURSE
  "liblzss_stream.a"
)
