# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("bram")
subdirs("stream")
subdirs("lzss")
subdirs("deflate")
subdirs("hw")
subdirs("fpga")
subdirs("swmodel")
subdirs("workloads")
subdirs("estimator")
subdirs("parallel")
subdirs("rtl")
subdirs("logger")
