file(REMOVE_RECURSE
  "liblzss_hw.a"
)
