file(REMOVE_RECURSE
  "CMakeFiles/lzss_hw.dir/compressor.cpp.o"
  "CMakeFiles/lzss_hw.dir/compressor.cpp.o.d"
  "CMakeFiles/lzss_hw.dir/config.cpp.o"
  "CMakeFiles/lzss_hw.dir/config.cpp.o.d"
  "CMakeFiles/lzss_hw.dir/decompressor.cpp.o"
  "CMakeFiles/lzss_hw.dir/decompressor.cpp.o.d"
  "CMakeFiles/lzss_hw.dir/huffman_decode_stage.cpp.o"
  "CMakeFiles/lzss_hw.dir/huffman_decode_stage.cpp.o.d"
  "CMakeFiles/lzss_hw.dir/huffman_stage.cpp.o"
  "CMakeFiles/lzss_hw.dir/huffman_stage.cpp.o.d"
  "CMakeFiles/lzss_hw.dir/pipeline.cpp.o"
  "CMakeFiles/lzss_hw.dir/pipeline.cpp.o.d"
  "CMakeFiles/lzss_hw.dir/trace.cpp.o"
  "CMakeFiles/lzss_hw.dir/trace.cpp.o.d"
  "liblzss_hw.a"
  "liblzss_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lzss_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
