# Empty dependencies file for lzss_hw.
# This may be replaced when dependencies are built.
