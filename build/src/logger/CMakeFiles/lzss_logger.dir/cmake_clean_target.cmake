file(REMOVE_RECURSE
  "liblzss_logger.a"
)
