# Empty dependencies file for lzss_logger.
# This may be replaced when dependencies are built.
