file(REMOVE_RECURSE
  "CMakeFiles/lzss_logger.dir/archive.cpp.o"
  "CMakeFiles/lzss_logger.dir/archive.cpp.o.d"
  "liblzss_logger.a"
  "liblzss_logger.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lzss_logger.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
