file(REMOVE_RECURSE
  "liblzss_core.a"
)
