file(REMOVE_RECURSE
  "CMakeFiles/lzss_core.dir/decoder.cpp.o"
  "CMakeFiles/lzss_core.dir/decoder.cpp.o.d"
  "CMakeFiles/lzss_core.dir/incremental_encoder.cpp.o"
  "CMakeFiles/lzss_core.dir/incremental_encoder.cpp.o.d"
  "CMakeFiles/lzss_core.dir/params.cpp.o"
  "CMakeFiles/lzss_core.dir/params.cpp.o.d"
  "CMakeFiles/lzss_core.dir/raw_container.cpp.o"
  "CMakeFiles/lzss_core.dir/raw_container.cpp.o.d"
  "CMakeFiles/lzss_core.dir/sw_encoder.cpp.o"
  "CMakeFiles/lzss_core.dir/sw_encoder.cpp.o.d"
  "CMakeFiles/lzss_core.dir/token.cpp.o"
  "CMakeFiles/lzss_core.dir/token.cpp.o.d"
  "liblzss_core.a"
  "liblzss_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lzss_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
