
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lzss/decoder.cpp" "src/lzss/CMakeFiles/lzss_core.dir/decoder.cpp.o" "gcc" "src/lzss/CMakeFiles/lzss_core.dir/decoder.cpp.o.d"
  "/root/repo/src/lzss/incremental_encoder.cpp" "src/lzss/CMakeFiles/lzss_core.dir/incremental_encoder.cpp.o" "gcc" "src/lzss/CMakeFiles/lzss_core.dir/incremental_encoder.cpp.o.d"
  "/root/repo/src/lzss/params.cpp" "src/lzss/CMakeFiles/lzss_core.dir/params.cpp.o" "gcc" "src/lzss/CMakeFiles/lzss_core.dir/params.cpp.o.d"
  "/root/repo/src/lzss/raw_container.cpp" "src/lzss/CMakeFiles/lzss_core.dir/raw_container.cpp.o" "gcc" "src/lzss/CMakeFiles/lzss_core.dir/raw_container.cpp.o.d"
  "/root/repo/src/lzss/sw_encoder.cpp" "src/lzss/CMakeFiles/lzss_core.dir/sw_encoder.cpp.o" "gcc" "src/lzss/CMakeFiles/lzss_core.dir/sw_encoder.cpp.o.d"
  "/root/repo/src/lzss/token.cpp" "src/lzss/CMakeFiles/lzss_core.dir/token.cpp.o" "gcc" "src/lzss/CMakeFiles/lzss_core.dir/token.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/lzss_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
