# Empty dependencies file for lzss_core.
# This may be replaced when dependencies are built.
