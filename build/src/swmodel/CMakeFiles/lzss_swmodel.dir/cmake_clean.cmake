file(REMOVE_RECURSE
  "CMakeFiles/lzss_swmodel.dir/cache_sim.cpp.o"
  "CMakeFiles/lzss_swmodel.dir/cache_sim.cpp.o.d"
  "CMakeFiles/lzss_swmodel.dir/ppc440_model.cpp.o"
  "CMakeFiles/lzss_swmodel.dir/ppc440_model.cpp.o.d"
  "liblzss_swmodel.a"
  "liblzss_swmodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lzss_swmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
