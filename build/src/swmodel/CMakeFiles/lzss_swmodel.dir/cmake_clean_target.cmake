file(REMOVE_RECURSE
  "liblzss_swmodel.a"
)
