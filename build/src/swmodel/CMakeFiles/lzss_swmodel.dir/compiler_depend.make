# Empty compiler generated dependencies file for lzss_swmodel.
# This may be replaced when dependencies are built.
