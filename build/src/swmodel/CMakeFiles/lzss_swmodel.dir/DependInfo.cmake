
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/swmodel/cache_sim.cpp" "src/swmodel/CMakeFiles/lzss_swmodel.dir/cache_sim.cpp.o" "gcc" "src/swmodel/CMakeFiles/lzss_swmodel.dir/cache_sim.cpp.o.d"
  "/root/repo/src/swmodel/ppc440_model.cpp" "src/swmodel/CMakeFiles/lzss_swmodel.dir/ppc440_model.cpp.o" "gcc" "src/swmodel/CMakeFiles/lzss_swmodel.dir/ppc440_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/lzss_common.dir/DependInfo.cmake"
  "/root/repo/build/src/lzss/CMakeFiles/lzss_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
