file(REMOVE_RECURSE
  "CMakeFiles/lzss_common.dir/bitio.cpp.o"
  "CMakeFiles/lzss_common.dir/bitio.cpp.o.d"
  "CMakeFiles/lzss_common.dir/checksum.cpp.o"
  "CMakeFiles/lzss_common.dir/checksum.cpp.o.d"
  "CMakeFiles/lzss_common.dir/env.cpp.o"
  "CMakeFiles/lzss_common.dir/env.cpp.o.d"
  "CMakeFiles/lzss_common.dir/vcd.cpp.o"
  "CMakeFiles/lzss_common.dir/vcd.cpp.o.d"
  "liblzss_common.a"
  "liblzss_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lzss_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
