file(REMOVE_RECURSE
  "liblzss_common.a"
)
