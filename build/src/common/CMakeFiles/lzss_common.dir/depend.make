# Empty dependencies file for lzss_common.
# This may be replaced when dependencies are built.
