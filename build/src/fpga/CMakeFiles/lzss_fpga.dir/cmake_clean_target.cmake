file(REMOVE_RECURSE
  "liblzss_fpga.a"
)
