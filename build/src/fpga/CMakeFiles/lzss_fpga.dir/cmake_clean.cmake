file(REMOVE_RECURSE
  "CMakeFiles/lzss_fpga.dir/resource_model.cpp.o"
  "CMakeFiles/lzss_fpga.dir/resource_model.cpp.o.d"
  "liblzss_fpga.a"
  "liblzss_fpga.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lzss_fpga.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
