# Empty dependencies file for lzss_fpga.
# This may be replaced when dependencies are built.
