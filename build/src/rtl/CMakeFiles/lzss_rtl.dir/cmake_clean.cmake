file(REMOVE_RECURSE
  "CMakeFiles/lzss_rtl.dir/vhdl_gen.cpp.o"
  "CMakeFiles/lzss_rtl.dir/vhdl_gen.cpp.o.d"
  "liblzss_rtl.a"
  "liblzss_rtl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lzss_rtl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
