# Empty dependencies file for lzss_rtl.
# This may be replaced when dependencies are built.
