file(REMOVE_RECURSE
  "liblzss_rtl.a"
)
