// Table I — performance evaluation: software (zlib on the 400 MHz
// PowerPC-440, modelled) vs hardware (100 MHz, 4 KB dictionary, 15-bit
// hash), on the Wiki and X2E data sets at two block sizes, with DMA setup
// time included exactly as the paper measures it.
//
// Paper anchors: HW ~= 49-50 MB/s, speedup 15-20x, ratios 1.68-1.70.
#include "bench_util.hpp"

#include "hw/pipeline.hpp"
#include "lzss/sw_encoder.hpp"
#include "swmodel/ppc440_model.hpp"

namespace {

using namespace lzss;

struct Row {
  std::string label;
  double sw_mbps, hw_mbps, speedup, ratio;
};

Row run_row(const std::string& corpus, std::size_t bytes) {
  const auto data = wl::make_corpus(corpus, bytes);

  // Hardware: full testbench pipeline (DMA setup included).
  const hw::HwConfig cfg = hw::HwConfig::speed_optimized();
  const auto report = hw::run_system(cfg, data);

  // Software baseline: zlib-equivalent encoder priced on the PPC440 model.
  core::MatchParams p = core::MatchParams::speed_optimized();
  core::SoftwareEncoder sw(p);
  (void)sw.encode(data);
  const auto timing = swm::price(sw.stats(), data.size());

  Row r;
  r.label = corpus + " " + std::to_string(bytes / 1'000'000) + "MB";
  r.sw_mbps = timing.mb_per_s;
  r.hw_mbps = report.mb_per_s(cfg.clock_mhz);
  r.speedup = r.hw_mbps / r.sw_mbps;
  r.ratio = report.ratio();
  return r;
}

void print_tables() {
  bench::print_title("TABLE I — PERFORMANCE EVALUATION",
                     "paper: HW ~49-50 MB/s @100 MHz, speedup 15-20x, ratio 1.68-1.70\n"
                     "(SW = zlib level 1 on PPC440 @400 MHz, modelled; DMA setup included)");

  const std::size_t big = bench::sample_bytes(10);
  const std::size_t small = std::max<std::size_t>(big / 5, 1'000'000);

  std::printf("%-14s %12s %12s %10s %14s\n", "Data sample", "SW (MB/s)", "HW (MB/s)", "Speedup",
              "Compr. ratio");
  for (const auto& row : {run_row("wiki", big), run_row("wiki", small), run_row("x2e", big),
                          run_row("x2e", small)}) {
    std::printf("%-14s %12.2f %12.1f %9.1fx %14.2f\n", row.label.c_str(), row.sw_mbps,
                row.hw_mbps, row.speedup, row.ratio);
  }
}

// Host-side cost of the two compressors (the simulator itself and the
// software encoder), for people profiling the library rather than the model.
void BM_HwModel(benchmark::State& state) {
  const auto& data = bench::cached_corpus("wiki", 256 * 1024);
  hw::Compressor comp(hw::HwConfig::speed_optimized());
  for (auto _ : state) {
    benchmark::DoNotOptimize(comp.compress(data).tokens.size());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * data.size()));
}
BENCHMARK(BM_HwModel)->Unit(benchmark::kMillisecond);

void BM_SwEncoder(benchmark::State& state) {
  const auto& data = bench::cached_corpus("wiki", 256 * 1024);
  core::SoftwareEncoder enc(core::MatchParams::speed_optimized());
  for (auto _ : state) {
    benchmark::DoNotOptimize(enc.encode(data).size());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * data.size()));
}
BENCHMARK(BM_SwEncoder)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return lzss::bench::run_bench_main(argc, argv, print_tables);
}
