// Fig. 2 — compressed size of the (100 MB-scaled) Wiki workload as a
// function of dictionary size, for several hash sizes.
//
// Paper shape: output shrinks monotonically with dictionary size, and the
// improvement is more pronounced at larger hash sizes; the published curve
// runs from ~67 MB (small dict) down to ~54 MB at 16 K with a 15-bit hash.
#include "bench_util.hpp"

#include "estimator/evaluate.hpp"

namespace {

using namespace lzss;

constexpr std::uint64_t kReferenceBytes = 100'000'000;  // the paper's 100 MB

void print_tables() {
  bench::print_title("FIG. 2 — COMPRESSED SIZE (MB) OF A 100 MB WIKI FRAGMENT",
                     "rows: hash bits; columns: dictionary size; values scaled to a 100 MB "
                     "input\npaper: monotone decrease with dictionary, steeper at larger hash");

  const std::size_t bytes = bench::sample_bytes(4);
  const auto& data = bench::cached_corpus("wiki", bytes);
  const unsigned dict_bits[] = {10, 11, 12, 13, 14};
  const unsigned hash_bits[] = {9, 11, 13, 15};

  std::printf("%-10s", "hash\\dict");
  for (const unsigned d : dict_bits) std::printf("%8uK", (1u << d) / 1024);
  std::printf("\n");
  for (const unsigned h : hash_bits) {
    std::printf("%-10u", h);
    for (const unsigned d : dict_bits) {
      hw::HwConfig cfg = hw::HwConfig::speed_optimized();
      cfg.dict_bits = d;
      cfg.hash.bits = h;
      const auto ev = est::evaluate(cfg, data);
      std::printf("%9.1f", ev.scaled_compressed_mb(kReferenceBytes));
    }
    std::printf("\n");
  }
}

void BM_Fig2Point(benchmark::State& state) {
  const auto& data = bench::cached_corpus("wiki", 256 * 1024);
  hw::HwConfig cfg = hw::HwConfig::speed_optimized();
  cfg.dict_bits = static_cast<unsigned>(state.range(0));
  hw::Compressor comp(cfg);
  for (auto _ : state) benchmark::DoNotOptimize(comp.compress(data).tokens.size());
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * data.size()));
}
BENCHMARK(BM_Fig2Point)->Arg(10)->Arg(14)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return lzss::bench::run_bench_main(argc, argv, print_tables);
}
