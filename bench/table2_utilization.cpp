// Table II — FPGA utilization for three (hash size, dictionary size)
// configurations on the XC5VFX70T.
//
// Paper anchor: logic utilization stays "insignificant and almost the same"
// (~5.2 % LZSS + ~0.6 % Huffman) across all reasonable configurations; BRAM
// counts are exact arithmetic from the memory geometries.
#include "bench_util.hpp"

#include "fpga/resource_model.hpp"

namespace {

using namespace lzss;

void print_row(unsigned hash_bits, unsigned dict_bits) {
  hw::HwConfig cfg = hw::HwConfig::speed_optimized();
  cfg.hash.bits = hash_bits;
  cfg.dict_bits = dict_bits;
  const auto r = fpga::estimate_resources(cfg);
  std::printf("%-10u %-12u %8u %6.1f%% %10u %6.1f%% %8zu %6.1f%%\n", hash_bits,
              cfg.dict_size() / 1024, r.luts, r.lut_percent(), r.registers,
              r.register_percent(), r.bram36_total, r.bram_percent());
}

void print_tables() {
  bench::print_title("TABLE II — FPGA UTILIZATION (XC5VFX70T)",
                     "paper: LUT utilization ~5.2%+0.6% and nearly configuration-independent\n"
                     "(LUT/register columns are an analytic estimate anchored to that figure;\n"
                     " BRAM columns are exact primitive counts)");
  std::printf("%-10s %-12s %8s %7s %10s %7s %8s %7s\n", "Hash bits", "Dict (KB)", "LUTs", "",
              "Registers", "", "RAMB36", "");
  print_row(15, 16);  // 15 bits, 64 KB
  print_row(12, 13);  // 12 bits, 8 KB
  print_row(9, 12);   // 9 bits, 4 KB
  std::printf("device: 44800 LUTs, 44800 registers, 148 RAMB36\n");

  std::printf("\nper-memory BRAM budget for the speed-optimized configuration:\n");
  const auto r = fpga::estimate_resources(hw::HwConfig::speed_optimized());
  for (const auto& m : r.memories) {
    std::printf("  %-11s %6zu x %2ub -> %2zu RAMB36 (%2zu RAMB18)\n", m.name.c_str(), m.depth,
                m.width_bits, m.bram36, m.bram18);
  }
}

void BM_ResourceModel(benchmark::State& state) {
  hw::HwConfig cfg = hw::HwConfig::speed_optimized();
  for (auto _ : state) {
    benchmark::DoNotOptimize(fpga::estimate_resources(cfg).bram36_total);
  }
}
BENCHMARK(BM_ResourceModel);

}  // namespace

int main(int argc, char** argv) {
  return lzss::bench::run_bench_main(argc, argv, print_tables);
}
