// Table III — compression speed without the paper's optimizations, for
// 4 KB and 64 KB windows on the Wiki workload.
//
// Paper (100 MB Wiki fragment):
//   A) original (15-bit hash, 32-bit data)   49.0 / 46.2 MB/s
//   B) 8-bit data bus as in [11]             30.3 / 25.9 MB/s
//   C) disabled hash prefetching             45.2 / 45.0 MB/s
//   D) reduced generation bits to 1          38.4 / 33.8 MB/s
//   all three disabled (the [11] baseline)   10.2 / 21.2 MB/s
//   => wide buses +63-78 %, prefetch +8 %, overall 2.2x-4.8x.
#include "bench_util.hpp"

#include "estimator/evaluate.hpp"
#include "hw/config.hpp"

namespace {

using namespace lzss;

hw::HwConfig variant(char which, unsigned dict_bits) {
  hw::HwConfig c = hw::HwConfig::speed_optimized();
  c.dict_bits = dict_bits;
  switch (which) {
    case 'A':
      break;  // original
    case 'B':
      c.bus_width_bytes = 1;
      break;
    case 'C':
      c.hash_prefetch = false;
      break;
    case 'D':
      c.generation_bits = 1;
      break;
    case 'X':  // all three optimizations over [11] disabled
      c.bus_width_bytes = 1;
      c.hash_prefetch = false;
      c.generation_bits = 1;
      c.head_split = 1;
      c.relative_next = false;
      break;
    default:
      throw std::logic_error("unknown variant");
  }
  return c;
}

void print_tables() {
  bench::print_title(
      "TABLE III — COMPRESSION SPEED WITHOUT OPTIMIZATIONS (Wiki workload)",
      "paper @100 MB: A 49.0/46.2  B 30.3/25.9  C 45.2/45.0  D 38.4/33.8  all-off 10.2/21.2");

  const std::size_t bytes = bench::sample_bytes(8);
  const auto& data = bench::cached_corpus("wiki", bytes);

  const struct {
    char id;
    const char* name;
  } rows[] = {
      {'A', "A) original (15-bit hash; 32-bit data)"},
      {'B', "B) 8-bit data bus as in [11]"},
      {'C', "C) disabled hash prefetching"},
      {'D', "D) reduced generation bits to 1"},
      {'X', "Disabled all 3 optimizations over [11]"},
  };

  std::printf("%-42s %14s %14s\n", "Configuration", "window 4KB", "window 64KB");
  double a4 = 0, a16 = 0, x4 = 0, x16 = 0;
  for (const auto& row : rows) {
    const auto e4 = est::evaluate(variant(row.id, 12), data);
    const auto e16 = est::evaluate(variant(row.id, 16), data);
    std::printf("%-42s %11.1f MB/s %11.1f MB/s\n", row.name, e4.mb_per_s(), e16.mb_per_s());
    if (row.id == 'A') {
      a4 = e4.mb_per_s();
      a16 = e16.mb_per_s();
    }
    if (row.id == 'X') {
      x4 = e4.mb_per_s();
      x16 = e16.mb_per_s();
    }
  }
  std::printf("\noverall speedup of the optimizations: %.1fx (4KB), %.1fx (64KB)"
              "   [paper: 4.8x / 2.2x]\n",
              a4 / x4, a16 / x16);
}

void BM_Ablation_NarrowBus(benchmark::State& state) {
  const auto& data = bench::cached_corpus("wiki", 256 * 1024);
  hw::Compressor comp(variant('B', 12));
  for (auto _ : state) benchmark::DoNotOptimize(comp.compress(data).stats.total_cycles);
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * data.size()));
}
BENCHMARK(BM_Ablation_NarrowBus)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return lzss::bench::run_bench_main(argc, argv, print_tables);
}
