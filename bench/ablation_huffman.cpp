// Ablation: fixed-table vs dynamic Huffman coding.
//
// Section IV: "The cost for the high performance is less efficient
// compression compared to the dynamic huffman coders, however, it can be
// also compensated by increasing LZSS compression level." This bench
// quantifies both halves of that sentence on every bundled corpus.
#include "bench_util.hpp"

#include "deflate/dynamic_encoder.hpp"
#include "deflate/encoder.hpp"
#include "hw/compressor.hpp"

namespace {

using namespace lzss;

void print_tables() {
  bench::print_title("ABLATION — FIXED vs DYNAMIC HUFFMAN CODING",
                     "paper: fixed table trades compression for zero table-building cycles;\n"
                     "a higher LZSS level can buy the loss back");

  const std::size_t bytes = bench::sample_bytes(4);
  std::printf("%-10s %12s %12s %10s %16s\n", "corpus", "fixed (B)", "dynamic (B)", "loss",
              "fixed@max (B)");
  for (const char* corpus : {"wiki", "x2e", "mixed", "periodic64", "random"}) {
    const auto data = wl::make_corpus(corpus, bytes);
    hw::Compressor min_level(hw::HwConfig::speed_optimized());
    const auto tokens = min_level.compress(data).tokens;
    const auto fixed_size = deflate::deflate_fixed(tokens).size();
    const auto dyn_size = deflate::deflate_dynamic(tokens).size();

    hw::Compressor max_level(hw::HwConfig::speed_optimized().with_level(9));
    const auto tokens9 = max_level.compress(data).tokens;
    const auto fixed9_size = deflate::deflate_fixed(tokens9).size();

    std::printf("%-10s %12zu %12zu %9.1f%% %16zu%s\n", corpus, fixed_size, dyn_size,
                100.0 * (double(fixed_size) - double(dyn_size)) / double(fixed_size),
                fixed9_size, fixed9_size <= dyn_size ? "  <- level compensates" : "");
  }
}

void BM_DynamicBlockBuild(benchmark::State& state) {
  const auto& data = bench::cached_corpus("wiki", 256 * 1024);
  hw::Compressor comp(hw::HwConfig::speed_optimized());
  const auto tokens = comp.compress(data).tokens;
  for (auto _ : state) benchmark::DoNotOptimize(deflate::deflate_dynamic(tokens).size());
}
BENCHMARK(BM_DynamicBlockBuild)->Unit(benchmark::kMillisecond);

void BM_FixedBlockBuild(benchmark::State& state) {
  const auto& data = bench::cached_corpus("wiki", 256 * 1024);
  hw::Compressor comp(hw::HwConfig::speed_optimized());
  const auto tokens = comp.compress(data).tokens;
  for (auto _ : state) benchmark::DoNotOptimize(deflate::deflate_fixed(tokens).size());
}
BENCHMARK(BM_FixedBlockBuild)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return lzss::bench::run_bench_main(argc, argv, print_tables);
}
