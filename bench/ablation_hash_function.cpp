// Ablation: the "exact hash function" generic.
//
// The paper lists the hash function among the compile-time generics. This
// bench compares the zlib shift-xor hash against a multiplicative
// (Fibonacci) hash across hash sizes: probe counts, speed and ratio.
#include "bench_util.hpp"

#include "estimator/evaluate.hpp"

namespace {

using namespace lzss;

void print_tables() {
  bench::print_title("ABLATION — HASH FUNCTION CHOICE (Wiki workload)",
                     "zlib shift-xor vs multiplicative, per hash size");

  const std::size_t bytes = bench::sample_bytes(4);
  const auto& data = bench::cached_corpus("wiki", bytes);

  std::printf("%-6s %-16s %10s %10s %12s %14s\n", "bits", "function", "MB/s", "ratio",
              "cyc/byte", "probes/token");
  for (const unsigned bits : {9u, 12u, 15u}) {
    for (const auto kind : {core::HashKind::kZlibShift, core::HashKind::kMultiplicative}) {
      hw::HwConfig cfg = hw::HwConfig::speed_optimized();
      cfg.hash.bits = bits;
      cfg.hash.kind = kind;
      const auto ev = est::evaluate(cfg, data);
      std::printf("%-6u %-16s %10.1f %10.3f %12.3f %14.2f\n", bits,
                  kind == core::HashKind::kZlibShift ? "zlib-shift" : "multiplicative",
                  ev.mb_per_s(), ev.ratio(), ev.cycles_per_byte(),
                  double(ev.stats.chain_probes) / double(ev.stats.tokens()));
    }
  }
}

void BM_HashZlib(benchmark::State& state) {
  const core::HashSpec h{.bits = 15, .kind = core::HashKind::kZlibShift};
  std::uint32_t x = 1;
  for (auto _ : state) {
    x = x * 1664525u + 1013904223u;
    benchmark::DoNotOptimize(h.hash3(static_cast<std::uint8_t>(x),
                                     static_cast<std::uint8_t>(x >> 8),
                                     static_cast<std::uint8_t>(x >> 16)));
  }
}
BENCHMARK(BM_HashZlib);

void BM_HashMultiplicative(benchmark::State& state) {
  const core::HashSpec h{.bits = 15, .kind = core::HashKind::kMultiplicative};
  std::uint32_t x = 1;
  for (auto _ : state) {
    x = x * 1664525u + 1013904223u;
    benchmark::DoNotOptimize(h.hash3(static_cast<std::uint8_t>(x),
                                     static_cast<std::uint8_t>(x >> 8),
                                     static_cast<std::uint8_t>(x >> 16)));
  }
}
BENCHMARK(BM_HashMultiplicative);

}  // namespace

int main(int argc, char** argv) {
  return lzss::bench::run_bench_main(argc, argv, print_tables);
}
