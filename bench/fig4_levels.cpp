// Fig. 4 — compressed size and speed at the minimum and maximum compression
// levels, for 9- and 15-bit hashes, across dictionary sizes.
//
// Paper shape (100 MB Wiki): raising the matching-iteration limit improves
// compression by ~20 % at the cost of ~82 % of the speed; the four curves
// (hash x level) keep their order across the dictionary range:
//   size:  9b/min > 15b/min > 9b/max ~ 15b/max   (min level ~59-73 MB)
//   speed: 15b/min (49 MB/s) > 9b/min (38) > 15b/max (18) > 9b/max (8)
#include "bench_util.hpp"

#include "estimator/evaluate.hpp"

namespace {

using namespace lzss;

constexpr std::uint64_t kReferenceBytes = 100'000'000;

void print_tables() {
  bench::print_title("FIG. 4 — SIZE AND SPEED AT MIN/MAX COMPRESSION LEVEL (Wiki)",
                     "paper: max level buys ~20% size at ~82% speed cost");

  const std::size_t bytes = bench::sample_bytes(4);
  const auto& data = bench::cached_corpus("wiki", bytes);
  const unsigned dict_bits[] = {10, 11, 12, 13, 14};

  const struct {
    unsigned hash;
    int level;
    const char* name;
  } series[] = {
      {9, 1, "9 bits;min"},
      {15, 1, "15 bits;min"},
      {9, 9, "9 bits;max"},
      {15, 9, "15 bits;max"},
  };

  std::printf("compressed size, MB (scaled to a 100 MB input)\n");
  std::printf("%-14s", "series\\dict");
  for (const unsigned d : dict_bits) std::printf("%8uK", (1u << d) / 1024);
  std::printf("\n");
  std::vector<std::vector<double>> speeds;
  for (const auto& s : series) {
    std::printf("%-14s", s.name);
    std::vector<double> row_speed;
    for (const unsigned d : dict_bits) {
      hw::HwConfig cfg = hw::HwConfig::speed_optimized().with_level(s.level);
      cfg.dict_bits = d;
      cfg.hash.bits = s.hash;
      const auto ev = est::evaluate(cfg, data);
      std::printf("%9.1f", ev.scaled_compressed_mb(kReferenceBytes));
      row_speed.push_back(ev.mb_per_s());
    }
    std::printf("\n");
    speeds.push_back(std::move(row_speed));
  }

  std::printf("\ncompression speed, MB/s @ 100 MHz\n");
  std::printf("%-14s", "series\\dict");
  for (const unsigned d : dict_bits) std::printf("%8uK", (1u << d) / 1024);
  std::printf("\n");
  for (std::size_t i = 0; i < std::size(series); ++i) {
    std::printf("%-14s", series[i].name);
    for (const double v : speeds[i]) std::printf("%9.1f", v);
    std::printf("\n");
  }

  // The headline trade-off at the 4 KB point.
  hw::HwConfig lo = hw::HwConfig::speed_optimized().with_level(1);
  hw::HwConfig hi = hw::HwConfig::speed_optimized().with_level(9);
  const auto el = est::evaluate(lo, data);
  const auto eh = est::evaluate(hi, data);
  std::printf("\nmin->max at 4KB/15b: size -%.0f%%, speed -%.0f%%   [paper: ~-20%% / ~-82%%]\n",
              100.0 * (1.0 - double(eh.compressed_bytes) / double(el.compressed_bytes)),
              100.0 * (1.0 - eh.mb_per_s() / el.mb_per_s()));
}

void BM_Fig4MaxLevel(benchmark::State& state) {
  const auto& data = bench::cached_corpus("wiki", 128 * 1024);
  hw::Compressor comp(hw::HwConfig::speed_optimized().with_level(9));
  for (auto _ : state) benchmark::DoNotOptimize(comp.compress(data).stats.total_cycles);
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * data.size()));
}
BENCHMARK(BM_Fig4MaxLevel)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return lzss::bench::run_bench_main(argc, argv, print_tables);
}
