// Shared plumbing for the experiment benches.
//
// Every binary regenerates one table or figure of the paper: it prints the
// measured rows next to the paper's published values (where legible), then
// runs a couple of google-benchmark timers for the host-side cost of the
// components involved. Sample sizes scale with LZSS_BENCH_MB (the paper used
// a 100 MB Wikipedia fragment; shapes are stable from a few MiB up).
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

#include "common/env.hpp"
#include "workloads/corpus.hpp"

namespace lzss::bench {

inline void print_title(const char* title, const char* note) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title);
  if (note != nullptr && *note != '\0') std::printf("%s\n", note);
  std::printf("==============================================================\n");
}

/// Sample bytes for this bench: LZSS_BENCH_MB MiB, default @p def_mb.
inline std::size_t sample_bytes(std::size_t def_mb) {
  return env::bench_bytes(def_mb);
}

/// Cached corpus so the table section and the google-benchmark section do
/// not regenerate the same data.
inline const std::vector<std::uint8_t>& cached_corpus(const std::string& name,
                                                      std::size_t bytes) {
  static std::string cur_name;
  static std::size_t cur_bytes = 0;
  static std::vector<std::uint8_t> data;
  if (cur_name != name || cur_bytes != bytes) {
    data = wl::make_corpus(name, bytes);
    cur_name = name;
    cur_bytes = bytes;
  }
  return data;
}

/// Runs the table-generation part, then google-benchmark. Call from main().
inline int run_bench_main(int argc, char** argv, void (*print_tables)()) {
  benchmark::Initialize(&argc, argv);
  print_tables();
  std::printf("\n-- host-side microbenchmarks (google-benchmark) --\n");
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

}  // namespace lzss::bench
