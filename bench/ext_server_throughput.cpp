// Extension: the compression service under concurrent load.
//
// N loadgen threads drive the full wire path (frame encode → session parse →
// bounded queue → worker pool → frame decode) over the in-process loopback
// transport. Two design-space axes the paper's figures don't cover:
//   * aggregate host throughput vs. the number of service engines (workers),
//   * reject (BUSY) rate vs. the bounded queue depth under saturation —
//     the software twin of the valid/ready backpressure in stream/channel.
// A third axis behind `--durable`: goodput of the LOG_APPEND opcode per
// fsync policy, i.e. what each durability guarantee costs at the wire.
// A fourth: single-request GB/s of the blocked container (COMPRESS_BLOCKED)
// vs block size vs engines — the fan-out path where one request spreads
// over the whole pool.
// A fifth behind `--maintenance`: LOG_APPEND goodput with the background
// compaction + scrub thread running against a gappy archive vs without —
// the interference cost of self-healing, as a ratio.
// A sixth (also in the default artifact, standalone behind `--overload`):
// served-vs-shed goodput and the latency tail of *admitted* requests when
// the real TCP front end is driven past capacity with the brownout gate
// armed — what overload control buys at 1-4x oversubscription.
// A seventh (also in the default artifact, standalone behind
// `--trace-overhead`): aggregate compress throughput with request tracing
// off, sampled at the default 1/16, and always-on — what the span plumbing
// costs at the wire, as an overhead percentage against the untraced run.
// An eighth (also in the default artifact, standalone behind
// `--matchfinder`): ratio and MB/s of each software match-finder backend
// (hash chain / suffix array / greedy) over every workload corpus, with the
// match-length comparer pinned to scalar vs the best SIMD ISA on this host.
//
// Besides the human tables, the default run writes BENCH_server.json
// (override with `--json <path>`): the sweep rows plus a full STATS-opcode
// snapshot fetched over the loopback wire, so CI can archive and diff the
// machine-readable numbers.
#include "bench_util.hpp"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/prng.hpp"
#include "deflate/encoder.hpp"
#include "lzss/mf_encoder.hpp"
#include "lzss/simd_compare.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "server/retry.hpp"
#include "server/service.hpp"
#include "server/tcp.hpp"
#include "store/log_store.hpp"
#include "store/maintenance.hpp"

namespace {

using namespace lzss;

std::string g_json_path = "BENCH_server.json";

struct LoadResult {
  double mb_per_s = 0;
  double reject_rate = 0;
  std::uint64_t ok = 0;
  std::uint64_t busy = 0;
  std::uint64_t retries = 0;
};

/// Closed-loop load: each thread sends @p requests_per_thread compress
/// requests of @p chunk bytes back to back. With a null @p retry policy a
/// BUSY answer counts as a reject and the loadgen moves on; with a policy
/// each request backs off and re-submits, so "busy" counts only requests
/// that stayed rejected after the final attempt.
LoadResult run_load(server::Service& service, const std::vector<std::uint8_t>& corpus,
                    unsigned threads, std::size_t chunk, int requests_per_thread,
                    const server::RetryPolicy* retry = nullptr) {
  std::atomic<std::uint64_t> ok{0}, busy{0}, ok_bytes{0}, retried{0};
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) {
    pool.emplace_back([&, t] {
      server::LoopbackClient client(service);
      for (int i = 0; i < requests_per_thread; ++i) {
        // Stride through the corpus so requests are not byte-identical.
        const std::size_t off = ((static_cast<std::size_t>(t) * 7919 +
                                  static_cast<std::size_t>(i) * 104729) *
                                 chunk) %
                                (corpus.size() - chunk);
        server::RequestFrame req;
        req.id = static_cast<std::uint64_t>(t) << 32 | static_cast<std::uint32_t>(i);
        req.opcode = server::Opcode::kCompress;
        req.payload.assign(corpus.begin() + static_cast<std::ptrdiff_t>(off),
                           corpus.begin() + static_cast<std::ptrdiff_t>(off + chunk));
        server::ResponseFrame resp;
        if (retry != nullptr) {
          // Per-thread deterministic jitter: seed by thread id so backoff
          // sleeps decorrelate instead of re-arriving in lockstep.
          server::RetryPolicy policy = *retry;
          policy.seed += t;
          server::RetryStats rs;
          resp = server::call_with_retry(
              [&client](const server::RequestFrame& r) { return client.call(r); }, req, policy,
              &rs);
          retried.fetch_add(rs.retries);
        } else {
          resp = client.call(req);
        }
        if (resp.status == server::Status::kOk) {
          ok.fetch_add(1);
          ok_bytes.fetch_add(chunk);
        } else if (resp.status == server::Status::kBusy) {
          busy.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : pool) th.join();
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

  LoadResult r;
  r.ok = ok.load();
  r.busy = busy.load();
  r.retries = retried.load();
  r.mb_per_s = secs > 0 ? static_cast<double>(ok_bytes.load()) / 1e6 / secs : 0;
  const double total = static_cast<double>(r.ok + r.busy);
  r.reject_rate = total > 0 ? static_cast<double>(r.busy) / total : 0;
  return r;
}

struct BlockedResult {
  double compress_gb_s = 0;    ///< GB/s (10^9 bytes) over the raw input
  double decompress_gb_s = 0;  ///< GB/s over the raw output
  std::uint64_t helper_blocks = 0;
  std::size_t container_bytes = 0;
  bool ok = false;
};

/// One COMPRESS_BLOCKED request for the whole @p corpus, then a DECOMPRESS
/// of the container it produced. Unlike run_load() this measures how far a
/// *single* request can spread across the pool, so throughput is per
/// request, not aggregate, and the helper-block counter says how much of
/// the work left the parent worker.
BlockedResult run_blocked(server::Service& service, const std::vector<std::uint8_t>& corpus) {
  BlockedResult r;
  server::LoopbackClient client(service);

  server::RequestFrame req;
  req.id = 1;
  req.opcode = server::Opcode::kCompressBlocked;
  req.payload = corpus;
  auto t0 = std::chrono::steady_clock::now();
  auto resp = client.call(req);
  double secs = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  if (resp.status != server::Status::kOk) return r;
  r.compress_gb_s = secs > 0 ? static_cast<double>(corpus.size()) / 1e9 / secs : 0;
  r.container_bytes = resp.payload.size();
  r.helper_blocks = service.metrics().counter("container_helper_blocks_total").value();

  server::RequestFrame dreq;
  dreq.id = 2;
  dreq.opcode = server::Opcode::kDecompress;
  dreq.payload = std::move(resp.payload);
  t0 = std::chrono::steady_clock::now();
  resp = client.call(dreq);
  secs = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  if (resp.status != server::Status::kOk || resp.payload.size() != corpus.size()) return r;
  r.decompress_gb_s = secs > 0 ? static_cast<double>(corpus.size()) / 1e9 / secs : 0;
  r.ok = true;
  return r;
}

struct OverloadResult {
  double goodput_mb_s = 0;  ///< MB/s of *served* request bytes (shed excluded)
  std::uint64_t ok = 0;
  std::uint64_t shed = 0;      ///< BUSY answers: queue-full plus brownout gate
  std::uint64_t transport = 0; ///< dropped connections (reconnected and moved on)
  double p50_ms = 0;           ///< client-observed latency of served requests
  double p99_ms = 0;
  bool stats_ok = false;  ///< a STATS probe fired mid-overload must succeed
  std::uint64_t brownout_shed = 0;
  std::uint64_t brownouts = 0;
};

/// Closed-loop overload over the *real* TCP transport: a small worker pool
/// behind a shallow queue and an armed brownout gate, driven by
/// `oversub x workers` loadgen threads. The contract measured: served
/// requests keep a flat latency tail because the excess is shed at the frame
/// header (BUSY) instead of queueing, and the control plane (STATS) stays
/// answerable throughout.
OverloadResult run_overload(const std::vector<std::uint8_t>& corpus, unsigned oversub,
                            std::size_t chunk, int requests_per_thread) {
  server::ServiceConfig cfg;
  cfg.workers = 2;
  cfg.queue_depth = 8;
  server::Service service(cfg);
  server::TcpServerConfig tcfg;
  tcfg.max_conns = 64;
  tcfg.brownout_queue_wait_us = 20'000;  // 20 ms queue-wait p99 trips the gate
  tcfg.drain_deadline_ms = 2000;
  server::TcpServer tcp(service, /*port=*/0, tcfg);
  std::thread server_thread([&] { tcp.run(); });
  const std::uint16_t port = tcp.port();

  const unsigned threads = cfg.workers * oversub;
  std::atomic<std::uint64_t> ok{0}, shed{0}, transport{0}, ok_bytes{0};
  std::mutex lat_mutex;
  std::vector<double> lat_ms;
  std::atomic<bool> probe_ok{false};

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) {
    pool.emplace_back([&, t] {
      std::unique_ptr<server::TcpClient> client;
      for (int i = 0; i < requests_per_thread; ++i) {
        const std::size_t off = ((static_cast<std::size_t>(t) * 7919 +
                                  static_cast<std::size_t>(i) * 104729) *
                                 chunk) %
                                (corpus.size() - chunk);
        server::RequestFrame req;
        req.id = static_cast<std::uint64_t>(t) << 32 | static_cast<std::uint32_t>(i);
        req.opcode = server::Opcode::kCompress;
        req.payload.assign(corpus.begin() + static_cast<std::ptrdiff_t>(off),
                           corpus.begin() + static_cast<std::ptrdiff_t>(off + chunk));
        try {
          if (!client)
            client = std::make_unique<server::TcpClient>("127.0.0.1", port);
          const auto s0 = std::chrono::steady_clock::now();
          const auto resp = client->call(req);
          const double ms =
              std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - s0)
                  .count();
          if (resp.status == server::Status::kOk) {
            ok.fetch_add(1);
            ok_bytes.fetch_add(chunk);
            const std::lock_guard<std::mutex> lock(lat_mutex);
            lat_ms.push_back(ms);
          } else if (resp.status == server::Status::kBusy) {
            shed.fetch_add(1);
          }
        } catch (const std::exception&) {
          transport.fetch_add(1);
          client.reset();
        }
      }
    });
  }

  // Control-plane probe while the loadgen is still hammering: STATS must be
  // admitted (never a bulky opcode) and answered even mid-brownout.
  std::thread prober([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    try {
      server::TcpClient stats_client("127.0.0.1", port);
      server::RequestFrame sreq;
      sreq.id = 0x57A75;
      sreq.opcode = server::Opcode::kStats;
      const auto resp = stats_client.call(sreq);
      probe_ok.store(resp.status == server::Status::kOk && !resp.payload.empty());
    } catch (const std::exception&) {
      probe_ok.store(false);
    }
  });

  for (auto& th : pool) th.join();
  prober.join();
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

  OverloadResult r;
  r.ok = ok.load();
  r.shed = shed.load();
  r.transport = transport.load();
  r.goodput_mb_s = secs > 0 ? static_cast<double>(ok_bytes.load()) / 1e6 / secs : 0;
  r.stats_ok = probe_ok.load();
  r.brownout_shed =
      service.metrics().counter("server_frames_shed_total", {{"reason", "brownout"}}).value();
  r.brownouts = service.metrics().counter("server_brownout_entered_total").value();
  std::sort(lat_ms.begin(), lat_ms.end());
  if (!lat_ms.empty()) {
    r.p50_ms = lat_ms[lat_ms.size() / 2];
    r.p99_ms = lat_ms[std::min(lat_ms.size() - 1, (lat_ms.size() * 99) / 100)];
  }

  tcp.stop();
  server_thread.join();
  return r;
}

/// Prints the tracing A/B/C table and returns the rows as a JSON array. The
/// measured contract (docs/OBSERVABILITY.md): the span plumbing is cheap
/// enough to leave on — always-on tracing must stay within a few percent of
/// the untraced run, and the default 1/16 sampling within noise.
std::string trace_overhead_sweep(const std::vector<std::uint8_t>& corpus) {
  const std::size_t chunk = 64 * 1024;
  std::printf(
      "\n-- tracing overhead: 64 KiB compress, 2 engines, 4 loadgen threads\n"
      "   (off vs sampled 1/16 vs always-on; overhead vs the untraced run) --\n");
  std::printf("%-14s %13s %9s %9s %10s\n", "tracing", "host MB/s", "ok", "spans",
              "overhead");
  std::string json = "[";
  char jbuf[192];
  double base = 0;
  struct Mode {
    const char* name;
    const char* key;
    unsigned sample;
    bool ring;
  };
  const Mode modes[] = {{"off", "off", 0, false},
                        {"sampled 1/16", "sampled", 16, true},
                        {"always-on", "always", 1, true}};
  bool first = true;
  for (const Mode& m : modes) {
    obs::TraceRing ring(8192);
    server::ServiceConfig cfg;
    cfg.workers = 2;
    cfg.queue_depth = 64;
    cfg.trace = m.ring ? &ring : nullptr;
    cfg.trace_sample = m.sample;
    server::Service service(cfg);
    const auto r = run_load(service, corpus, /*threads=*/4, chunk,
                            /*requests_per_thread=*/24);
    if (base == 0) base = r.mb_per_s;  // first row is the untraced baseline
    const double overhead_pct = base > 0 ? (1.0 - r.mb_per_s / base) * 100.0 : 0;
    std::printf("%-14s %13.2f %9llu %9llu %9.1f%%\n", m.name, r.mb_per_s,
                static_cast<unsigned long long>(r.ok),
                static_cast<unsigned long long>(ring.recorded()), overhead_pct);
    std::snprintf(jbuf, sizeof(jbuf),
                  "%s{\"mode\":\"%s\",\"trace_sample\":%u,\"mb_per_s\":%.3f,"
                  "\"ok\":%llu,\"spans\":%llu,\"overhead_pct\":%.2f}",
                  first ? "" : ",", m.key, m.sample, r.mb_per_s,
                  static_cast<unsigned long long>(r.ok),
                  static_cast<unsigned long long>(ring.recorded()), overhead_pct);
    json += jbuf;
    first = false;
  }
  json += "]";
  return json;
}

/// `--trace-overhead`: just the tracing A/B/C, written as its own artifact.
void print_trace_overhead_tables() {
  bench::print_title("EXTENSION — REQUEST-TRACING OVERHEAD AT THE WIRE",
                     "closed-loop 64 KiB compress: untraced vs sampled vs always-on");
  const std::size_t bytes = std::max<std::size_t>(bench::sample_bytes(2), 1 << 20);
  const auto& corpus = bench::cached_corpus("wiki", bytes);
  std::string json = "{\"bench\":\"server_trace_overhead\",\"chunk_bytes\":65536,"
                     "\"trace_overhead\":";
  json += trace_overhead_sweep(corpus);
  json += "}\n";
  std::FILE* jf = std::fopen(g_json_path.c_str(), "wb");
  if (jf != nullptr) {
    std::fwrite(json.data(), 1, json.size(), jf);
    std::fclose(jf);
    std::printf("\nwrote %s\n", g_json_path.c_str());
  }
}

/// Prints the overload table and returns the rows as a JSON array, so the
/// same sweep feeds both the default artifact and the standalone
/// `--overload` run.
std::string overload_sweep(const std::vector<std::uint8_t>& corpus) {
  const std::size_t chunk = 64 * 1024;
  std::printf(
      "\n-- overload: 64 KiB compress at Nx capacity over real TCP (2 engines, queue 8,\n"
      "   brownout gate armed at 20 ms queue-wait p99; shed = BUSY at the frame header) --\n");
  std::printf("%-8s %9s %13s %9s %9s %9s %9s %10s %9s\n", "oversub", "threads", "goodput MB/s",
              "served", "shed", "p50 ms", "p99 ms", "stats ok", "brownout");
  std::string json = "[";
  char jbuf[320];
  bool first = true;
  for (const unsigned oversub : {1u, 2u, 4u}) {
    const auto r = run_overload(corpus, oversub, chunk, /*requests_per_thread=*/24);
    char cell[16];
    std::snprintf(cell, sizeof(cell), "%ux", oversub);
    std::printf("%-8s %9u %13.2f %9llu %9llu %9.2f %9.2f %10s %9llu\n", cell, 2 * oversub,
                r.goodput_mb_s, static_cast<unsigned long long>(r.ok),
                static_cast<unsigned long long>(r.shed), r.p50_ms, r.p99_ms,
                r.stats_ok ? "yes" : "NO",
                static_cast<unsigned long long>(r.brownout_shed));
    std::snprintf(jbuf, sizeof(jbuf),
                  "%s{\"oversub\":%u,\"threads\":%u,\"goodput_mb_s\":%.3f,\"served\":%llu,"
                  "\"shed\":%llu,\"transport_errors\":%llu,\"p50_ms\":%.3f,\"p99_ms\":%.3f,"
                  "\"stats_ok\":%s,\"brownout_shed\":%llu,\"brownouts\":%llu}",
                  first ? "" : ",", oversub, 2 * oversub, r.goodput_mb_s,
                  static_cast<unsigned long long>(r.ok),
                  static_cast<unsigned long long>(r.shed),
                  static_cast<unsigned long long>(r.transport), r.p50_ms, r.p99_ms,
                  r.stats_ok ? "true" : "false",
                  static_cast<unsigned long long>(r.brownout_shed),
                  static_cast<unsigned long long>(r.brownouts));
    json += jbuf;
    first = false;
  }
  json += "]";
  return json;
}

/// `--overload`: just the overload sweep, written as its own JSON artifact.
void print_overload_tables() {
  bench::print_title("EXTENSION — OVERLOAD CONTROL AT THE TCP FRONT END",
                     "closed-loop 64 KiB compress at 1-4x capacity, brownout gate armed");
  const std::size_t bytes = std::max<std::size_t>(bench::sample_bytes(2), 1 << 20);
  const auto& corpus = bench::cached_corpus("wiki", bytes);
  std::string json = "{\"bench\":\"server_overload\",\"chunk_bytes\":65536,\"overload_sweep\":";
  json += overload_sweep(corpus);
  json += "}\n";
  std::FILE* jf = std::fopen(g_json_path.c_str(), "wb");
  if (jf != nullptr) {
    std::fwrite(json.data(), 1, json.size(), jf);
    std::fclose(jf);
    std::printf("\nwrote %s\n", g_json_path.c_str());
  }
}

/// Times one MatchFinderEncoder pass over @p data with the comparer pinned
/// to @p isa; best-of-@p reps MB/s plus the token stream of the last pass.
double time_encode(const core::MatchParams& p, const std::vector<std::uint8_t>& data,
                   core::simd::CompareIsa isa, int reps, std::vector<core::Token>* tokens) {
  core::simd::force_isa(isa);
  double best = 0;
  for (int r = 0; r < reps; ++r) {
    core::MatchFinderEncoder enc(p);
    const auto t0 = std::chrono::steady_clock::now();
    auto t = enc.encode(data);
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    best = std::max(best, secs > 0 ? static_cast<double>(data.size()) / secs / 1e6 : 0.0);
    if (tokens != nullptr && r == reps - 1) *tokens = std::move(t);
  }
  return best;
}

/// Prints the per-backend ratio/throughput matrix over every workload corpus,
/// with the comparer pinned to scalar and to the best ISA this host has —
/// the A/B that shows what the vector match-length comparer buys each
/// backend. Returns the rows as a JSON array for the artifact.
std::string matchfinder_sweep() {
  const std::size_t bytes = 256 * 1024;
  const int reps = 3;
  const auto best = core::simd::best_isa();
  std::printf(
      "\n-- match-finder backends: 256 KiB one-shot encode per cell, best of %d\n"
      "   (comparer pinned to scalar vs %s; ratio = fixed-Huffman bits / input) --\n",
      reps, core::simd::isa_name(best));
  std::printf("%-12s %-12s %8s %14s %14s %9s\n", "backend", "corpus", "ratio",
              "scalar MB/s", "simd MB/s", "speedup");
  std::string json = "[";
  char jbuf[256];
  bool first = true;
  for (const auto kind : {core::MatchFinderKind::kHashChain, core::MatchFinderKind::kSuffixArray,
                          core::MatchFinderKind::kGreedy}) {
    core::MatchParams p = core::MatchParams::speed_optimized();
    p.finder = kind;
    for (const auto& name : wl::corpus_names()) {
      const auto& data = bench::cached_corpus(name, bytes);
      std::vector<core::Token> tokens;
      const double scalar_mb_s =
          time_encode(p, data, core::simd::CompareIsa::kScalar, reps, nullptr);
      const double simd_mb_s = time_encode(p, data, best, reps, &tokens);
      const double ratio = data.empty()
                               ? 0.0
                               : static_cast<double>((deflate::fixed_block_bits(tokens) + 7) / 8) /
                                     static_cast<double>(data.size());
      std::printf("%-12s %-12s %8.4f %14.2f %14.2f %8.2fx\n", core::finder_name(kind),
                  name.c_str(), ratio, scalar_mb_s, simd_mb_s,
                  scalar_mb_s > 0 ? simd_mb_s / scalar_mb_s : 0.0);
      std::snprintf(jbuf, sizeof(jbuf),
                    "%s{\"backend\":\"%s\",\"corpus\":\"%s\",\"ratio\":%.4f,"
                    "\"scalar_mb_s\":%.2f,\"simd_mb_s\":%.2f,\"simd_isa\":\"%s\"}",
                    first ? "" : ",", core::finder_name(kind), name.c_str(), ratio, scalar_mb_s,
                    simd_mb_s, core::simd::isa_name(best));
      json += jbuf;
      first = false;
    }
  }
  core::simd::force_isa(best);  // leave the process on the fast path
  json += "]";
  return json;
}

/// `--matchfinder`: just the backend sweep, written as its own JSON artifact.
void print_matchfinder_tables() {
  bench::print_title("EXTENSION — MATCH-FINDER BACKENDS x WORKLOADS",
                     "ratio and MB/s per backend, scalar vs SIMD match-length comparer");
  std::string json = "{\"bench\":\"server_matchfinder\",\"matchfinder_sweep\":";
  json += matchfinder_sweep();
  json += "}\n";
  std::FILE* jf = std::fopen(g_json_path.c_str(), "wb");
  if (jf != nullptr) {
    std::fwrite(json.data(), 1, json.size(), jf);
    std::fclose(jf);
    std::printf("\nwrote %s\n", g_json_path.c_str());
  }
}

void print_tables() {
  bench::print_title("EXTENSION — COMPRESSION SERVICE UNDER LOAD (loopback transport)",
                     "N loadgen threads x 64 KiB compress requests, full wire path");

  const std::size_t bytes = std::max<std::size_t>(bench::sample_bytes(2), 1 << 20);
  const auto& corpus = bench::cached_corpus("wiki", bytes);
  const std::size_t chunk = 64 * 1024;

  std::string json = "{\"bench\":\"server_throughput\",\"chunk_bytes\":65536";
  char jbuf[256];
  std::string stats_payload;  // last engines-sweep STATS response, verbatim

  std::printf("\n-- throughput vs engines (queue depth 64, 2x oversubscribed load) --\n");
  std::printf("(engines are host threads: scaling needs cores; this host has %u)\n",
              std::thread::hardware_concurrency());
  std::printf("%-9s %9s %14s %9s %9s %12s\n", "engines", "threads", "host MB/s", "ok", "busy",
              "reject rate");
  json += ",\"engines_sweep\":[";
  double base = 0;
  for (const unsigned engines : {1u, 2u, 4u}) {
    server::ServiceConfig cfg;
    cfg.workers = engines;
    cfg.queue_depth = 64;
    server::Service service(cfg);
    const auto r = run_load(service, corpus, /*threads=*/engines * 2, chunk,
                            /*requests_per_thread=*/8);
    if (engines == 1) base = r.mb_per_s;
    std::printf("%-9u %9u %11.2f (%4.2fx) %6llu %9llu %11.1f%%\n", engines, engines * 2,
                r.mb_per_s, base > 0 ? r.mb_per_s / base : 0,
                static_cast<unsigned long long>(r.ok),
                static_cast<unsigned long long>(r.busy), 100 * r.reject_rate);
    std::snprintf(jbuf, sizeof(jbuf),
                  "%s{\"engines\":%u,\"threads\":%u,\"mb_per_s\":%.3f,\"ok\":%llu,"
                  "\"busy\":%llu,\"reject_rate\":%.4f}",
                  engines == 1 ? "" : ",", engines, engines * 2, r.mb_per_s,
                  static_cast<unsigned long long>(r.ok),
                  static_cast<unsigned long long>(r.busy), r.reject_rate);
    json += jbuf;
    // Fetch the machine-readable snapshot through the same wire path the
    // loadgen used; the last sweep's payload lands in the JSON artifact.
    server::LoopbackClient client(service);
    server::RequestFrame sreq;
    sreq.opcode = server::Opcode::kStats;
    const auto sresp = client.call(sreq);
    if (sresp.status == server::Status::kOk)
      stats_payload.assign(sresp.payload.begin(), sresp.payload.end());
  }
  json += "]";

  std::printf("\n-- backpressure vs queue depth (1 engine, 12 loadgen threads) --\n");
  std::printf("%-12s %9s %9s %12s %16s\n", "queue depth", "ok", "busy", "reject rate",
              "queue high water");
  json += ",\"queue_sweep\":[";
  for (const std::size_t depth : {1u, 2u, 4u, 8u, 16u}) {
    server::ServiceConfig cfg;
    cfg.workers = 1;
    cfg.queue_depth = depth;
    server::Service service(cfg);
    const auto r = run_load(service, corpus, /*threads=*/12, chunk,
                            /*requests_per_thread=*/4);
    const auto stats = service.snapshot();
    std::printf("%-12zu %9llu %9llu %11.1f%% %16llu\n", depth,
                static_cast<unsigned long long>(r.ok),
                static_cast<unsigned long long>(r.busy), 100 * r.reject_rate,
                static_cast<unsigned long long>(stats.queue_high_water));
    std::snprintf(jbuf, sizeof(jbuf),
                  "%s{\"queue_depth\":%zu,\"ok\":%llu,\"busy\":%llu,\"reject_rate\":%.4f,"
                  "\"queue_high_water\":%llu}",
                  depth == 1 ? "" : ",", depth, static_cast<unsigned long long>(r.ok),
                  static_cast<unsigned long long>(r.busy), r.reject_rate,
                  static_cast<unsigned long long>(stats.queue_high_water));
    json += jbuf;
  }
  json += "]";

  // Same saturated setup (1 engine, shallow queue, 12 threads) with and
  // without client-side retry: backoff converts rejects into completed work
  // at the cost of added client latency.
  std::printf("\n-- retry with backoff vs give-up (1 engine, queue depth 2, 12 threads) --\n");
  std::printf("%-22s %9s %9s %9s %12s\n", "client policy", "ok", "busy", "retries",
              "goodput rate");
  json += ",\"retry_sweep\":[";
  for (const bool with_retry : {false, true}) {
    server::ServiceConfig cfg;
    cfg.workers = 1;
    cfg.queue_depth = 2;
    server::Service service(cfg);
    server::RetryPolicy policy;
    policy.max_attempts = 6;
    policy.base_delay_ms = 1;
    policy.max_delay_ms = 64;
    const auto r = run_load(service, corpus, /*threads=*/12, chunk,
                            /*requests_per_thread=*/4, with_retry ? &policy : nullptr);
    const double total = static_cast<double>(r.ok + r.busy);
    std::printf("%-22s %9llu %9llu %9llu %11.1f%%\n",
                with_retry ? "retry x5, jitter" : "give up on BUSY",
                static_cast<unsigned long long>(r.ok),
                static_cast<unsigned long long>(r.busy),
                static_cast<unsigned long long>(r.retries),
                total > 0 ? 100 * static_cast<double>(r.ok) / total : 0);
    std::snprintf(jbuf, sizeof(jbuf),
                  "%s{\"retry\":%s,\"ok\":%llu,\"busy\":%llu,\"retries\":%llu}",
                  with_retry ? "," : "", with_retry ? "true" : "false",
                  static_cast<unsigned long long>(r.ok),
                  static_cast<unsigned long long>(r.busy),
                  static_cast<unsigned long long>(r.retries));
    json += jbuf;
  }
  json += "]";

  // Blocked container: one big request split into fixed-size blocks and
  // fanned across the worker pool, so a single caller can occupy every
  // engine. GB here is decimal (10^9 bytes). The sweep shows the trade:
  // small blocks parallelise better but restart the dictionary more often
  // (bigger container), big blocks the reverse.
  std::printf("\n-- blocked container: one 8 MiB COMPRESS_BLOCKED request per cell --\n");
  std::printf("%-10s %8s %14s %16s %14s %16s\n", "block KiB", "engines", "compress GB/s",
              "decompress GB/s", "helper blocks", "container bytes");
  const auto& big = bench::cached_corpus("x2e", 8u << 20);
  json += ",\"blocked_sweep\":[";
  bool first_blocked = true;
  for (const unsigned block_kb : {64u, 256u, 1024u}) {
    for (const unsigned engines : {1u, 2u, 4u}) {
      server::ServiceConfig cfg;
      cfg.workers = engines;
      cfg.queue_depth = 64;
      cfg.block_bytes = static_cast<std::size_t>(block_kb) * 1024;
      server::Service service(cfg);
      const auto r = run_blocked(service, big);
      if (!r.ok) {
        std::printf("%-10u %8u   (request failed)\n", block_kb, engines);
        continue;
      }
      std::printf("%-10u %8u %14.3f %16.3f %14llu %16zu\n", block_kb, engines, r.compress_gb_s,
                  r.decompress_gb_s, static_cast<unsigned long long>(r.helper_blocks),
                  r.container_bytes);
      std::snprintf(jbuf, sizeof(jbuf),
                    "%s{\"block_kb\":%u,\"engines\":%u,\"compress_gb_s\":%.4f,"
                    "\"decompress_gb_s\":%.4f,\"helper_blocks\":%llu,\"container_bytes\":%zu}",
                    first_blocked ? "" : ",", block_kb, engines, r.compress_gb_s,
                    r.decompress_gb_s, static_cast<unsigned long long>(r.helper_blocks),
                    r.container_bytes);
      json += jbuf;
      first_blocked = false;
    }
  }
  json += "]";

  // Overload control over the real TCP transport: served-vs-shed goodput and
  // the latency tail of admitted requests at 1-4x capacity.
  json += ",\"overload_sweep\":";
  json += overload_sweep(corpus);

  // What the span plumbing costs: tracing off / sampled 1/16 / always-on.
  json += ",\"trace_overhead\":";
  json += trace_overhead_sweep(corpus);

  // Software match-finder backends x workloads, scalar vs SIMD comparer.
  json += ",\"matchfinder_sweep\":";
  json += matchfinder_sweep();

  // The STATS payload is already JSON ({"service":...,"metrics":[...]}) —
  // embed it verbatim.
  json += ",\"stats\":";
  json += stats_payload.empty() ? "null" : stats_payload;
  json += "}\n";

  std::FILE* jf = std::fopen(g_json_path.c_str(), "wb");
  if (jf == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", g_json_path.c_str());
  } else {
    std::fwrite(json.data(), 1, json.size(), jf);
    std::fclose(jf);
    std::printf("\nwrote %s\n", g_json_path.c_str());
  }
}

/// `--durable`: goodput of the LOG_APPEND opcode per fsync policy. The
/// interesting number is not the absolute MB/s (that is the disk's) but the
/// ratio between policies: what an "acked means on disk" guarantee costs
/// relative to letting the OS cache absorb the stream.
void print_durable_tables() {
  bench::print_title("EXTENSION — DURABLE LOG APPENDS PER FSYNC POLICY (loopback transport)",
                     "4 loadgen threads x 4 KiB LOG_APPEND records through the service");

  const auto& corpus = bench::cached_corpus("wiki", 1 << 20);
  const std::size_t chunk = 4 * 1024;
  const unsigned threads = 4;
  const int per_thread = 200;

  std::printf("\n%-14s %12s %10s %9s %9s %14s\n", "fsync policy", "goodput MB/s", "records",
              "fsyncs", "segments", "stored bytes");
  for (const store::FsyncPolicy policy :
       {store::FsyncPolicy::kNever, store::FsyncPolicy::kInterval,
        store::FsyncPolicy::kEveryRecord}) {
    char tmpl[] = "/tmp/lzss_bench_store_XXXXXX";
    const char* dir = ::mkdtemp(tmpl);
    if (dir == nullptr) {
      std::printf("(skipping: cannot create a temp store directory)\n");
      return;
    }

    store::StoreOptions opt;
    opt.fsync_policy = policy;
    opt.segment_bytes = 4 * 1024 * 1024;
    std::uint64_t ok = 0;
    std::uint64_t ok_bytes = 0;
    double secs = 0;
    store::StoreStats ss;
    {
      store::LogStore log(dir, opt);
      server::ServiceConfig cfg;
      cfg.workers = 2;
      server::Service service(cfg);
      service.attach_store(&log);

      std::atomic<std::uint64_t> acked{0};
      const auto t0 = std::chrono::steady_clock::now();
      std::vector<std::thread> pool;
      for (unsigned t = 0; t < threads; ++t) {
        pool.emplace_back([&, t] {
          server::LoopbackClient client(service);
          for (int i = 0; i < per_thread; ++i) {
            const std::size_t off = ((static_cast<std::size_t>(t) * 7919 +
                                      static_cast<std::size_t>(i) * 104729) *
                                     chunk) %
                                    (corpus.size() - chunk);
            server::RequestFrame req;
            req.id = static_cast<std::uint64_t>(t) << 32 | static_cast<std::uint32_t>(i);
            req.opcode = server::Opcode::kLogAppend;
            req.payload.assign(corpus.begin() + static_cast<std::ptrdiff_t>(off),
                               corpus.begin() + static_cast<std::ptrdiff_t>(off + chunk));
            if (client.call(req).status == server::Status::kOk) acked.fetch_add(1);
          }
        });
      }
      for (auto& th : pool) th.join();
      secs = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
      ok = acked.load();
      ok_bytes = ok * chunk;
      ss = log.stats();
    }
    std::filesystem::remove_all(dir);

    std::printf("%-14s %12.2f %10llu %9llu %9llu %14llu\n", store::fsync_policy_name(policy),
                secs > 0 ? static_cast<double>(ok_bytes) / 1e6 / secs : 0,
                static_cast<unsigned long long>(ok),
                static_cast<unsigned long long>(ss.fsyncs),
                static_cast<unsigned long long>(ss.segments),
                static_cast<unsigned long long>(ss.bytes_stored));
  }
}

/// `--maintenance`: LOG_APPEND goodput with and without the background
/// maintenance thread (compaction + scrub) chewing on the same store. Both
/// runs start from byte-identical copies of a pre-seeded gappy archive, so
/// the interference ratio isolates what self-healing costs the foreground.
void print_maintenance_tables() {
  bench::print_title(
      "EXTENSION — FOREGROUND GOODPUT UNDER BACKGROUND MAINTENANCE",
      "4 loadgen threads x 4 KiB LOG_APPEND vs concurrent compaction + scrub");

  const auto& corpus = bench::cached_corpus("wiki", 1 << 20);
  const std::size_t chunk = 4 * 1024;
  const unsigned threads = 4;
  const int per_thread = 150;

  // Seed one gappy archive: incompressible records in small segments, then
  // a flipped byte in every other sealed segment, quarantined on reopen.
  // Both measurement runs get a flat copy so they compact identical work.
  char tmpl[] = "/tmp/lzss_bench_maint_XXXXXX";
  const char* seed_dir = ::mkdtemp(tmpl);
  if (seed_dir == nullptr) {
    std::printf("(skipping: cannot create a temp store directory)\n");
    return;
  }
  {
    store::StoreOptions opt;
    opt.fsync_policy = store::FsyncPolicy::kNever;
    opt.segment_bytes = 8 * 1024;
    store::LogStore log(seed_dir, opt);
    rng::Xoshiro256 rng(4242);
    std::vector<std::uint8_t> rec(2048);
    for (int i = 0; i < 80; ++i) {
      for (auto& b : rec) b = static_cast<std::uint8_t>(rng.next_below(256));
      log.append(rec);
    }
    log.flush();
  }
  {
    std::size_t n = 0;
    for (const auto& e : std::filesystem::directory_iterator(seed_dir)) {
      if (e.path().extension() != ".lzseg") continue;
      if (++n % 2 != 0) continue;  // every other segment gets bitrot
      std::FILE* f = std::fopen(e.path().c_str(), "r+b");
      if (f == nullptr) continue;
      std::fseek(f, 70, SEEK_SET);
      std::fputc('!', f);
      std::fclose(f);
    }
    std::filesystem::remove(std::string(seed_dir) + "/index.lzsx");
  }

  std::printf("\n%-22s %12s %9s %12s %9s %9s\n", "mode", "goodput MB/s", "records",
              "compactions", "scrubbed", "ratio");
  double base = 0;
  std::string json = "{\"bench\":\"server_maintenance\",\"chunk_bytes\":4096,\"modes\":[";
  char jbuf[256];
  for (const bool with_maintenance : {false, true}) {
    char run_tmpl[] = "/tmp/lzss_bench_maint_run_XXXXXX";
    const char* run_dir = ::mkdtemp(run_tmpl);
    if (run_dir == nullptr) break;
    for (const auto& e : std::filesystem::directory_iterator(seed_dir)) {
      if (e.is_regular_file())
        std::filesystem::copy_file(e.path(),
                                   std::filesystem::path(run_dir) / e.path().filename());
    }

    store::StoreOptions opt;
    opt.fsync_policy = store::FsyncPolicy::kInterval;
    opt.segment_bytes = 8 * 1024;
    std::uint64_t ok = 0;
    double secs = 0;
    store::MaintenanceStats ms;
    {
      store::LogStore log(run_dir, opt);  // quarantines the seeded bitrot
      server::ServiceConfig cfg;
      cfg.workers = 2;
      server::Service service(cfg);
      service.attach_store(&log);
      store::MaintenanceConfig mcfg;
      mcfg.compact_trigger_garbage_pct = 1.0;
      mcfg.scrub_interval_s = 1;
      mcfg.tick_interval_ms = 10;
      store::Maintenance maint(log, mcfg);
      if (with_maintenance) maint.start();

      std::atomic<std::uint64_t> acked{0};
      const auto t0 = std::chrono::steady_clock::now();
      std::vector<std::thread> pool;
      for (unsigned t = 0; t < threads; ++t) {
        pool.emplace_back([&, t] {
          server::LoopbackClient client(service);
          for (int i = 0; i < per_thread; ++i) {
            const std::size_t off = ((static_cast<std::size_t>(t) * 7919 +
                                      static_cast<std::size_t>(i) * 104729) *
                                     chunk) %
                                    (corpus.size() - chunk);
            server::RequestFrame req;
            req.id = static_cast<std::uint64_t>(t) << 32 | static_cast<std::uint32_t>(i);
            req.opcode = server::Opcode::kLogAppend;
            req.payload.assign(corpus.begin() + static_cast<std::ptrdiff_t>(off),
                               corpus.begin() + static_cast<std::ptrdiff_t>(off + chunk));
            if (client.call(req).status == server::Status::kOk) acked.fetch_add(1);
          }
        });
      }
      for (auto& th : pool) th.join();
      secs = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
      ok = acked.load();
      if (with_maintenance) maint.stop();
      ms = maint.stats();
    }
    std::filesystem::remove_all(run_dir);

    const double mb_per_s =
        secs > 0 ? static_cast<double>(ok * chunk) / 1e6 / secs : 0;
    if (!with_maintenance) base = mb_per_s;
    const double ratio = base > 0 ? mb_per_s / base : 0;
    std::printf("%-22s %12.2f %9llu %12llu %9llu %8.2fx\n",
                with_maintenance ? "compaction + scrub on" : "baseline (off)", mb_per_s,
                static_cast<unsigned long long>(ok),
                static_cast<unsigned long long>(ms.compactions),
                static_cast<unsigned long long>(ms.scrubbed_segments), ratio);
    std::snprintf(jbuf, sizeof(jbuf),
                  "%s{\"maintenance\":%s,\"mb_per_s\":%.3f,\"records\":%llu,"
                  "\"compactions\":%llu,\"scrubbed_segments\":%llu,"
                  "\"interference_ratio\":%.4f}",
                  with_maintenance ? "," : "", with_maintenance ? "true" : "false", mb_per_s,
                  static_cast<unsigned long long>(ok),
                  static_cast<unsigned long long>(ms.compactions),
                  static_cast<unsigned long long>(ms.scrubbed_segments), ratio);
    json += jbuf;
  }
  std::filesystem::remove_all(seed_dir);
  json += "]}\n";

  std::FILE* jf = std::fopen(g_json_path.c_str(), "wb");
  if (jf != nullptr) {
    std::fwrite(json.data(), 1, json.size(), jf);
    std::fclose(jf);
    std::printf("\nwrote %s\n", g_json_path.c_str());
  }
}

void BM_LoopbackCompress64K(benchmark::State& state) {
  static server::Service service([] {
    server::ServiceConfig cfg;
    cfg.workers = 2;
    return cfg;
  }());
  server::LoopbackClient client(service);
  const auto& corpus = bench::cached_corpus("wiki", 1 << 20);
  server::RequestFrame req;
  req.opcode = server::Opcode::kCompress;
  req.payload.assign(corpus.begin(), corpus.begin() + 64 * 1024);
  for (auto _ : state) {
    auto r = req;
    benchmark::DoNotOptimize(client.call(r).payload.size());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 64 * 1024);
}
BENCHMARK(BM_LoopbackCompress64K)->Unit(benchmark::kMillisecond);

void BM_PingRoundTrip(benchmark::State& state) {
  static server::Service service([] {
    server::ServiceConfig cfg;
    cfg.workers = 1;
    return cfg;
  }());
  server::LoopbackClient client(service);
  server::RequestFrame req;
  req.opcode = server::Opcode::kPing;
  for (auto _ : state) {
    auto r = req;
    benchmark::DoNotOptimize(client.call(r).status);
  }
}
BENCHMARK(BM_PingRoundTrip);

}  // namespace

int main(int argc, char** argv) {
  // `--durable` and `--json` are ours, not google-benchmark's, so strip them
  // before handing argv over. `--durable` swaps in the fsync-policy goodput
  // tables; `--json <path>` moves the machine-readable artifact.
  bool durable = false;
  bool maintenance = false;
  bool overload = false;
  bool trace_overhead = false;
  bool matchfinder = false;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--durable") == 0) {
      durable = true;
    } else if (std::strcmp(argv[i], "--maintenance") == 0) {
      maintenance = true;
    } else if (std::strcmp(argv[i], "--overload") == 0) {
      overload = true;
    } else if (std::strcmp(argv[i], "--trace-overhead") == 0) {
      trace_overhead = true;
    } else if (std::strcmp(argv[i], "--matchfinder") == 0) {
      matchfinder = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      g_json_path = argv[++i];
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;
  return lzss::bench::run_bench_main(argc, argv,
                                     matchfinder    ? print_matchfinder_tables
                                     : trace_overhead ? print_trace_overhead_tables
                                     : overload     ? print_overload_tables
                                     : maintenance  ? print_maintenance_tables
                                     : durable      ? print_durable_tables
                                                    : print_tables);
}
