// Fig. 3 — compression speed (MB/s at 100 MHz) on the Wiki workload as a
// function of dictionary size, for several hash sizes.
//
// Paper shape: larger dictionaries are slightly slower (more successful,
// longer chain walks); a larger hash compensates by cutting collisions;
// the 15-bit curve sits on top.
#include "bench_util.hpp"

#include "estimator/evaluate.hpp"

namespace {

using namespace lzss;

void print_tables() {
  bench::print_title("FIG. 3 — COMPRESSION SPEED (MB/s) ON THE WIKI WORKLOAD",
                     "rows: hash bits; columns: dictionary size\n"
                     "paper: speed dips as the dictionary grows; bigger hash compensates");

  const std::size_t bytes = bench::sample_bytes(4);
  const auto& data = bench::cached_corpus("wiki", bytes);
  const unsigned dict_bits[] = {11, 12, 13, 14};
  const unsigned hash_bits[] = {9, 11, 13, 15};

  std::printf("%-10s", "hash\\dict");
  for (const unsigned d : dict_bits) std::printf("%8uK", (1u << d) / 1024);
  std::printf("\n");
  for (const unsigned h : hash_bits) {
    std::printf("%-10u", h);
    for (const unsigned d : dict_bits) {
      hw::HwConfig cfg = hw::HwConfig::speed_optimized();
      cfg.dict_bits = d;
      cfg.hash.bits = h;
      const auto ev = est::evaluate(cfg, data);
      std::printf("%9.1f", ev.mb_per_s());
    }
    std::printf("\n");
  }
  std::printf("(cycles/byte at 15-bit hash, for reference)\n%-10s", "15");
  for (const unsigned d : dict_bits) {
    hw::HwConfig cfg = hw::HwConfig::speed_optimized();
    cfg.dict_bits = d;
    const auto ev = est::evaluate(cfg, data);
    std::printf("%9.2f", ev.cycles_per_byte());
  }
  std::printf("\n");
}

void BM_Fig3Point(benchmark::State& state) {
  const auto& data = bench::cached_corpus("wiki", 256 * 1024);
  hw::HwConfig cfg = hw::HwConfig::speed_optimized();
  cfg.hash.bits = static_cast<unsigned>(state.range(0));
  hw::Compressor comp(cfg);
  for (auto _ : state) benchmark::DoNotOptimize(comp.compress(data).stats.total_cycles);
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * data.size()));
}
BENCHMARK(BM_Fig3Point)->Arg(9)->Arg(15)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return lzss::bench::run_bench_main(argc, argv, print_tables);
}
