// Fig. 5 — time spent on different operations for the Wiki workload with a
// 64 KB dictionary and 15-bit hash.
//
// Paper: finding match 68.5 %, updating hash table 11.6 %, producing output
// 11.0 %, waiting for data 8.4 %, rotating hash 0.3 %, fetching data 0.2 %.
#include "bench_util.hpp"

#include "estimator/evaluate.hpp"

namespace {

using namespace lzss;

void print_tables() {
  bench::print_title("FIG. 5 — TIME SPENT ON DIFFERENT OPERATIONS (Wiki, 64KB dict, 15b hash)",
                     "paper: match 68.5%, update 11.6%, output 11.0%, wait 8.4%, "
                     "rotate 0.3%, fetch 0.2%");

  const std::size_t bytes = bench::sample_bytes(16);
  const auto& data = bench::cached_corpus("wiki", bytes);

  hw::HwConfig cfg = hw::HwConfig::speed_optimized();
  cfg.dict_bits = 16;  // 64 KB window, as in the paper's figure
  const auto ev = est::evaluate(cfg, data);
  const auto& s = ev.stats;

  const struct {
    const char* name;
    std::uint64_t cycles;
    double paper;
  } rows[] = {
      {"Finding match", s.matching, 68.5},
      {"Updating hash table", s.updating, 11.6},
      {"Producing output", s.output, 11.0},
      {"Waiting for data", s.waiting, 8.4},
      {"Rotating hash", s.rotating, 0.3},
      {"Fetching data", s.fetching, 0.2},
  };
  std::printf("%-22s %10s %10s %10s\n", "Operation", "cycles", "measured", "paper");
  for (const auto& r : rows) {
    std::printf("%-22s %10llu %9.1f%% %9.1f%%\n", r.name,
                static_cast<unsigned long long>(r.cycles), 100.0 * s.fraction(r.cycles),
                r.paper);
  }
  std::printf("\ntotal %llu cycles for %llu bytes -> %.2f cycles/byte, %.1f MB/s @ 100 MHz\n",
              static_cast<unsigned long long>(s.total_cycles),
              static_cast<unsigned long long>(s.bytes_in), s.cycles_per_byte(),
              s.mb_per_s(100.0));
}

void BM_Fig5Run(benchmark::State& state) {
  const auto& data = bench::cached_corpus("wiki", 256 * 1024);
  hw::HwConfig cfg = hw::HwConfig::speed_optimized();
  cfg.dict_bits = 16;
  hw::Compressor comp(cfg);
  for (auto _ : state) benchmark::DoNotOptimize(comp.compress(data).stats.total_cycles);
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * data.size()));
}
BENCHMARK(BM_Fig5Run)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return lzss::bench::run_bench_main(argc, argv, print_tables);
}
