// Extension: scaling a bank of compressor units.
//
// A single unit uses ~6 % of the XC5VFX70T's logic, so several fit; this
// bench measures the aggregate-throughput / compression-ratio trade-off of
// striping the input across 1..8 engines (the dictionary restarts per
// stripe, so small stripes cost a little ratio).
#include "bench_util.hpp"

#include "deflate/inflate.hpp"
#include "parallel/multi_engine.hpp"

namespace {

using namespace lzss;

void print_tables() {
  bench::print_title("EXTENSION — MULTI-ENGINE SCALING (Wiki workload)",
                     "aggregate throughput of 1..8 striped compressor units @ 100 MHz");

  const std::size_t bytes = bench::sample_bytes(8);
  const auto& data = bench::cached_corpus("wiki", bytes);

  // MB here is decimal (10^6 bytes), matching MultiEngineReport::
  // aggregate_mb_per_s — bytes * MHz / cycles is exactly 10^6 bytes/s.
  std::printf("%-9s %9s %14s %10s %10s %14s\n", "requested", "effective", "aggregate MB/s",
              "speedup", "ratio", "BRAM36 (bank)");
  const hw::HwConfig cfg = hw::HwConfig::speed_optimized();
  double base = 0;
  for (const unsigned engines : {1u, 2u, 4u, 8u}) {
    const auto report = par::compress_multi_engine(cfg, data, engines);
    // Sanity: the stitched stream must still inflate.
    if (deflate::inflate_raw(report.deflate_stream).size() != data.size()) {
      std::fprintf(stderr, "multi-engine stream corrupt!\n");
      std::exit(1);
    }
    const double mbps = report.aggregate_mb_per_s(cfg.clock_mhz);
    if (engines == 1) base = mbps;
    // Rows are labelled with the bank width that actually ran: on a small
    // corpus the stripe>=dictionary clamp can shrink the bank, and the BRAM
    // cost scales with real units, not the request.
    std::printf("%-9u %9u %14.1f %9.2fx %10.3f %14u\n", report.requested_engines,
                report.effective_engines, mbps, mbps / base, report.ratio(),
                21 * report.effective_engines);  // 21 RAMB36 per unit at this configuration
  }
}

void BM_MultiEngine4(benchmark::State& state) {
  const auto& data = bench::cached_corpus("wiki", 512 * 1024);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        par::compress_multi_engine(hw::HwConfig::speed_optimized(), data, 4).parallel_cycles);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * data.size()));
}
BENCHMARK(BM_MultiEngine4)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return lzss::bench::run_bench_main(argc, argv, print_tables);
}
