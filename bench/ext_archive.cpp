// Extension: seekable-archive block-size trade-off.
//
// The logger's archive compresses in independent blocks so analysis tools
// can seek; each block resets the dictionary and pays container overhead.
// This bench maps the block size against compression ratio and the cost of
// a random 4 KB read (bytes inflated to serve it).
#include "bench_util.hpp"

#include "logger/archive.hpp"

namespace {

using namespace lzss;

void print_tables() {
  bench::print_title("EXTENSION — SEEKABLE ARCHIVE: BLOCK SIZE vs RATIO vs SEEK COST",
                     "X2E traffic; random 4 KB reads; smaller blocks = cheaper seeks, "
                     "worse ratio");

  const std::size_t bytes = bench::sample_bytes(8);
  const auto data = wl::make_corpus("x2e", bytes);

  std::printf("%-12s %10s %10s %14s %20s\n", "block (KB)", "blocks", "ratio",
              "archive (MB)", "KB inflated per read");
  for (const std::size_t block_kb : {16u, 64u, 256u, 1024u}) {
    logger::ArchiveOptions opt;
    opt.block_bytes = block_kb * 1024;
    logger::ArchiveWriter w(opt);
    w.append(data);
    const auto archive = w.finish();
    logger::ArchiveReader r(archive);

    // Average the blocks touched by a few spread-out 4 KB reads.
    double touched = 0;
    const int kReads = 16;
    for (int i = 0; i < kReads; ++i) {
      const std::uint64_t off =
          static_cast<std::uint64_t>(i) * (data.size() - 4096) / kReads;
      (void)r.read(off, 4096);
      touched += static_cast<double>(r.last_blocks_touched());
    }
    std::printf("%-12zu %10zu %10.3f %14.2f %20.1f\n", block_kb, r.block_count(),
                double(data.size()) / double(archive.size()), archive.size() / 1e6,
                touched / kReads * static_cast<double>(block_kb));
  }
}

void BM_ArchiveRandomRead(benchmark::State& state) {
  const auto& data = bench::cached_corpus("x2e", 1024 * 1024);
  logger::ArchiveOptions opt;
  opt.block_bytes = static_cast<std::size_t>(state.range(0)) * 1024;
  logger::ArchiveWriter w(opt);
  w.append(data);
  const auto archive = w.finish();
  logger::ArchiveReader r(archive);
  std::uint64_t off = 0;
  for (auto _ : state) {
    off = (off + 77'777) % (data.size() - 4096);
    benchmark::DoNotOptimize(r.read(off, 4096).size());
  }
}
BENCHMARK(BM_ArchiveRandomRead)->Arg(16)->Arg(256)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  return lzss::bench::run_bench_main(argc, argv, print_tables);
}
