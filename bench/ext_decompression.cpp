// Extension: decompression-side throughput.
//
// The paper's reference [10] motivates fast hardware LZSS decompression
// (dynamic FPGA self-reconfiguration); a logger also reads its own
// archives. This bench runs the full decode pipeline (DMA -> fixed-Huffman
// decode stage -> LZSS window unit) over every corpus.
#include "bench_util.hpp"

#include "hw/pipeline.hpp"

namespace {

using namespace lzss;

void print_tables() {
  bench::print_title("EXTENSION — DECOMPRESSION PIPELINE THROUGHPUT",
                     "DMA -> fixed-Huffman decode -> LZSS window unit @ 100 MHz");

  const std::size_t bytes = bench::sample_bytes(4);
  std::printf("%-12s %12s %12s %12s %14s\n", "corpus", "comp MB/s", "decomp MB/s", "cyc/byte",
              "copy cycles %");
  for (const char* corpus : {"wiki", "x2e", "mixed", "zeros", "random"}) {
    const auto data = wl::make_corpus(corpus, bytes);
    const auto enc = hw::run_system(hw::HwConfig::speed_optimized(), data);
    const auto dec = hw::run_decode_system(hw::DecompressorConfig{}, enc.deflate_stream);
    if (dec.data != data) {
      std::fprintf(stderr, "decode pipeline mismatch on %s!\n", corpus);
      std::exit(1);
    }
    const auto& s = dec.decompressor;
    std::printf("%-12s %12.1f %12.1f %12.2f %13.1f%%\n", corpus,
                enc.mb_per_s(100.0), dec.mb_per_s(100.0),
                double(dec.total_cycles) / double(data.size()),
                100.0 * double(s.copy_cycles) / double(s.total_cycles));
  }
  std::printf("\n(decompression needs no matching, so it outruns compression everywhere)\n");
}

void BM_DecodePipeline(benchmark::State& state) {
  const auto& data = bench::cached_corpus("wiki", 256 * 1024);
  const auto enc = hw::run_system(hw::HwConfig::speed_optimized(), data);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        hw::run_decode_system(hw::DecompressorConfig{}, enc.deflate_stream).total_cycles);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * data.size()));
}
BENCHMARK(BM_DecodePipeline)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return lzss::bench::run_bench_main(argc, argv, print_tables);
}
